"""Budget-constrained autotuner: sampler proposals → executor tasks → report.

The runner owns the search loop.  Each sampler proposal batch is turned
into executor task specs (:func:`repro.experiments.planning.
plan_design_passes` — candidate names chunked into shared reference
passes, one task per chunk × workload) and fanned out over ``--jobs``
worker processes by :func:`repro.experiments.executor.execute_tasks`,
riding every contract the executor already pins:

* **dedupe** — tasks content-address into the pass cache, so a candidate
  re-proposed by a later round (or a re-run against a warm ``--cache-dir``)
  costs a lookup, not a simulation;
* **checkpoint/resume** — with a run journal every completed pass is
  durable the moment it finishes; an interrupted search resumed with
  ``--resume`` replays its (deterministic) decision sequence against the
  journaled results and recomputes only unfinished passes;
* **determinism** — samplers are pure functions of ``(space, seed,
  scores)`` and results merge in plan order, so the ranked report is
  byte-identical for any ``--jobs`` value.

Over-budget candidates are pruned *statically*: filter storage is a pure
function of design × hierarchy (:func:`repro.power.budget.
design_storage_bits`), so a candidate that cannot satisfy ``--budget-bits``
never reaches a worker.  Progress streams through ``search.*`` telemetry
counters (proposed / evaluated / pruned / deduped candidates, planned
/ cache-hit tasks, rounds).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.analysis.report import bar_chart
from repro.analysis.sweep import SweepPoint, pareto_frontier
from repro.cache.hierarchy import HierarchyConfig
from repro.cache.presets import paper_hierarchy_5level
from repro.core.presets import all_paper_design_names, parse_design
from repro.experiments.base import (
    ExperimentSettings,
    multicore_pass,
    reference_pass,
)
from repro.experiments.checkpoint import RunJournal
from repro.experiments.executor import execute_tasks
from repro.experiments.planning import MulticoreTask, plan_design_passes
from repro.multicore import multicore_storage_bits
from repro.multicore.config import parse_multicore_name
from repro.experiments.resilience import ExecutionPolicy
from repro.power.budget import design_storage_bits
from repro.search.objectives import INFEASIBLE, Evaluation, Objective
from repro.search.samplers import Proposal, Sampler
from repro.search.space import DesignPoint, SearchSpace

#: Floor the fidelity scaling never goes below (ExperimentSettings refuses
#: shorter traces).
MIN_INSTRUCTIONS = 1000

#: Family tag given to baseline candidates injected from the paper line-up.
BASELINE_FAMILY = "paper"


@dataclass
class SearchReport:
    """Everything one search run produced, renderable byte-stably."""

    space_name: str
    space_size: int
    sampler: str
    objective: Objective
    settings: ExperimentSettings
    rounds: int
    proposed: int
    evaluated: int
    pruned: int
    deduped: int
    infeasible: int
    tasks_planned: int
    tasks_computed: int
    ranked: List[Evaluation] = field(default_factory=list)
    frontier: List[SweepPoint] = field(default_factory=list)
    top_k: int = 10

    @property
    def tasks_cache_hits(self) -> int:
        return self.tasks_planned - self.tasks_computed

    @property
    def winner(self) -> Optional[Evaluation]:
        """The best feasible full-fidelity candidate, if any."""
        return self.ranked[0] if self.ranked else None

    def render(self) -> str:
        """The ranked report (no wall-clock — byte-stable across runs)."""
        from repro.analysis.report import TextTable

        lines = [
            f"== search: space={self.space_name} sampler={self.sampler} ==",
            f"objective: {self.objective.describe()}",
            (f"settings: instructions={self.settings.num_instructions} "
             f"seed={self.settings.seed} "
             f"workloads={','.join(self.settings.workload_list)}"),
            (f"space size {self.space_size} | rounds {self.rounds} | "
             f"proposed {self.proposed} | evaluated {self.evaluated} | "
             f"pruned {self.pruned} | deduped {self.deduped} | "
             f"infeasible {self.infeasible}"),
            # computed/cache-hit counts are deliberately NOT rendered:
            # they vary between a cold run and a resumed one, and the
            # report is byte-identical across --jobs and --resume.  They
            # live in to_dict() and the search.* telemetry counters.
            f"executor tasks: {self.tasks_planned} planned",
            "",
        ]
        if not self.ranked:
            lines.append("no feasible candidate satisfied the constraints")
            return "\n".join(lines)

        table = TextTable(
            ["rank", "design", "family", "KB", "coverage %", "cov%/KB",
             "energy %", "score"],
            float_digits=3,
        )
        for rank, evaluation in enumerate(self.ranked[:self.top_k], start=1):
            per_kb = evaluation.coverage_per_kb
            table.add_row([
                rank,
                evaluation.point.name,
                evaluation.point.family,
                round(evaluation.storage_kb, 3),
                round(evaluation.coverage * 100.0, 3),
                ("inf" if per_kb == float("inf")
                 else round(per_kb * 100.0, 3)),
                round(evaluation.energy_reduction * 100.0, 3),
                round(self.objective.score(evaluation), 6),
            ])
        lines.append(table.render())

        if self.frontier:
            lines.append("")
            lines.append("Pareto frontier (storage vs coverage):")
            frontier_table = TextTable(["design", "KB", "coverage %"],
                                       float_digits=3)
            for point in self.frontier:
                frontier_table.add_row([
                    point.design_name,
                    round(point.storage_kb, 3),
                    round(point.coverage * 100.0, 3),
                ])
            lines.append(frontier_table.render())
        return "\n".join(lines)

    def render_chart(self, width: int = 50) -> str:
        """ASCII figure: coverage of the ranked top-k (the optional figure)."""
        top = self.ranked[:self.top_k]
        return bar_chart(
            f"search[{self.space_name}]: coverage % of top-{len(top)}",
            [evaluation.point.name for evaluation in top],
            [evaluation.coverage * 100.0 for evaluation in top],
            width=width,
        )

    def to_dict(self) -> dict:
        """JSON-serialisable summary (CLI ``--json``)."""
        return {
            "experiment_id": "search",
            "space": self.space_name,
            "space_size": self.space_size,
            "sampler": self.sampler,
            "objective": self.objective.describe(),
            "settings": {
                "instructions": self.settings.num_instructions,
                "seed": self.settings.seed,
                "workloads": list(self.settings.workload_list),
            },
            "rounds": self.rounds,
            "proposed": self.proposed,
            "evaluated": self.evaluated,
            "pruned": self.pruned,
            "deduped": self.deduped,
            "infeasible": self.infeasible,
            "tasks": {
                "planned": self.tasks_planned,
                "computed": self.tasks_computed,
                "cache_hits": self.tasks_cache_hits,
            },
            "ranked": [
                {
                    "design": evaluation.point.name,
                    "family": evaluation.point.family,
                    "storage_bits": evaluation.storage_bits,
                    "coverage": evaluation.coverage,
                    "energy_reduction": evaluation.energy_reduction,
                    "score": self.objective.score(evaluation),
                }
                for evaluation in self.ranked[:self.top_k]
            ],
            "frontier": [
                {
                    "design": point.design_name,
                    "storage_bits": point.storage_bits,
                    "coverage": point.coverage,
                }
                for point in self.frontier
            ],
        }


def baseline_points() -> Tuple[DesignPoint, ...]:
    """The paper's fixed line-up as injectable candidates.

    Always seeding the candidate set with the hand-picked configurations
    guarantees the search can only match or beat them under any sampler:
    the best feasible paper design is itself in the ranking.  The oracle
    (``PERFECT``) is excluded — it is not a buildable design and would
    trivially win every objective.
    """
    return tuple(
        DesignPoint(family=BASELINE_FAMILY, name=name)
        for name in all_paper_design_names()
        if name != "PERFECT"
    )


def _scaled_settings(settings: ExperimentSettings,
                     fidelity: float) -> ExperimentSettings:
    """Settings for a trace-prefix evaluation at ``fidelity``."""
    if fidelity >= 1.0:
        return settings
    instructions = max(MIN_INSTRUCTIONS,
                       int(round(settings.num_instructions * fidelity)))
    return replace(settings, num_instructions=instructions)


class _SearchState:
    """Mutable bookkeeping for one `run_search` invocation."""

    def __init__(self) -> None:
        self.evaluations: Dict[str, Evaluation] = {}
        self.storage_bits: Dict[str, int] = {}
        self.pruned_names: set = set()
        self.rounds = 0
        self.proposed = 0
        self.evaluated = 0
        self.pruned = 0
        self.deduped = 0
        self.tasks_planned = 0
        self.tasks_computed = 0


def run_search(
    space: SearchSpace,
    sampler: Sampler,
    objective: Objective,
    settings: Optional[ExperimentSettings] = None,
    hierarchy_config: Optional[HierarchyConfig] = None,
    jobs: int = 1,
    policy: Optional[ExecutionPolicy] = None,
    journal: Optional[RunJournal] = None,
    top_k: int = 10,
    include_baselines: bool = True,
    chunk_size: int = 4,
    backend=None,
) -> SearchReport:
    """Run one budget-constrained design search and return its report.

    Deterministic by construction: the sampler sees only seeded
    randomness and the scores of its own proposals, evaluations aggregate
    in plan order, and ranking ties break on (storage bits, name) — so
    the report is byte-identical for any ``jobs`` value and across
    kill+resume (the journal and pass cache replay completed passes).
    """
    settings = settings or ExperimentSettings()
    hierarchy_config = hierarchy_config or paper_hierarchy_5level()
    if top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")

    registry = telemetry.get_registry()
    logger = telemetry.get_logger("search")
    spans = telemetry.get_spans()
    state = _SearchState()

    def evaluate(proposal: Proposal) -> Dict[str, float]:
        """Score one proposal batch, simulating only what's new."""
        state.rounds += 1
        with spans.span("search.round", round=state.rounds,
                        fidelity=proposal.fidelity,
                        proposed=len(proposal.points)):
            return _evaluate_in_span(proposal)

    def _evaluate_in_span(proposal: Proposal) -> Dict[str, float]:
        state.proposed += len(proposal.points)
        registry.counter("search.rounds").inc()
        registry.counter("search.candidates.proposed").inc(
            len(proposal.points))
        scaled = _scaled_settings(settings, proposal.fidelity)

        # Order-preserving unique names, with the point that introduced them.
        points_by_name: Dict[str, DesignPoint] = {}
        for point in proposal.points:
            points_by_name.setdefault(point.name, point)

        to_run: List[str] = []
        to_run_multicore: List[str] = []
        for name, point in points_by_name.items():
            mc = point.multicore_config()
            if name not in state.storage_bits:
                # A multicore point's static cost is its banks on the
                # topology (private sharing replicates state per core),
                # not the base design's single-core footprint.
                state.storage_bits[name] = (
                    multicore_storage_bits(hierarchy_config, point.design(),
                                           mc)
                    if mc is not None else
                    design_storage_bits(hierarchy_config, point.design()))
            if not objective.within_budget(state.storage_bits[name]):
                if name not in state.pruned_names:
                    state.pruned_names.add(name)
                    state.pruned += 1
                    registry.counter("search.candidates.pruned").inc()
                continue
            known = state.evaluations.get(name)
            if known is not None and known.fidelity >= proposal.fidelity:
                state.deduped += 1
                registry.counter("search.candidates.deduped").inc()
                continue
            (to_run_multicore if mc is not None else to_run).append(name)

        if to_run:
            tasks = plan_design_passes(to_run, hierarchy_config, scaled,
                                       chunk_size=chunk_size)
            state.tasks_planned += len(tasks)
            registry.counter("search.tasks.planned").inc(len(tasks))
            computed = execute_tasks(tasks, jobs, policy=policy,
                                     journal=journal, backend=backend)
            state.tasks_computed += computed
            registry.counter("search.tasks.computed").inc(computed)
            registry.counter("search.tasks.cache_hits").inc(
                len(tasks) - computed)
            logger.info(
                f"round {state.rounds}: evaluated {len(to_run)} candidates "
                f"at fidelity {proposal.fidelity:g}",
                tasks=len(tasks), computed=computed,
                span=spans.current_name() or "search.round")

            for start in range(0, len(to_run), chunk_size):
                chunk = to_run[start:start + chunk_size]
                accumulators = {
                    name: {"identified": 0, "candidates": 0, "violations": 0,
                           "energy": 0.0, "access_time": 0.0,
                           "storage_bits": 0}
                    for name in chunk
                }
                designs = tuple(points_by_name[name].design()
                                for name in chunk)
                for workload in scaled.workload_list:
                    result = reference_pass(workload, hierarchy_config,
                                            designs, scaled)
                    for name in chunk:
                        design_result = result.designs[name]
                        meter = design_result.coverage
                        bucket = accumulators[name]
                        bucket["identified"] += meter.identified
                        bucket["candidates"] += meter.candidates
                        bucket["violations"] += meter.violations
                        bucket["energy"] += result.energy_reduction(name)
                        bucket["access_time"] += (
                            result.access_time_reduction(name))
                        bucket["storage_bits"] = design_result.storage_bits
                num_workloads = len(scaled.workload_list)
                for name in chunk:
                    bucket = accumulators[name]
                    state.evaluations[name] = Evaluation(
                        point=points_by_name[name],
                        storage_bits=bucket["storage_bits"],
                        identified=bucket["identified"],
                        candidates=bucket["candidates"],
                        violations=bucket["violations"],
                        energy_reduction=bucket["energy"] / num_workloads,
                        access_time_reduction=(
                            bucket["access_time"] / num_workloads),
                        fidelity=proposal.fidelity,
                    )
                    state.evaluated += 1
                    registry.counter("search.candidates.evaluated").inc()

        if to_run_multicore:
            # Multicore candidates fan out as MulticoreTask specs — one
            # topology pass per (candidate, workload); the same
            # content-addressed cache dedupes and the journal resumes
            # them.  Energy/access-time reductions are 0.0 by definition
            # (there is no multicore power model), so rank this family by
            # a coverage metric.
            parsed = {name: parse_multicore_name(name)
                      for name in to_run_multicore}
            tasks = [
                MulticoreTask((workload,), hierarchy_config, (base,), mc,
                              scaled, experiment_id="search")
                for name in to_run_multicore
                for mc, base in (parsed[name],)
                for workload in scaled.workload_list
            ]
            state.tasks_planned += len(tasks)
            registry.counter("search.tasks.planned").inc(len(tasks))
            computed = execute_tasks(tasks, jobs, policy=policy,
                                     journal=journal, backend=backend)
            state.tasks_computed += computed
            registry.counter("search.tasks.computed").inc(computed)
            registry.counter("search.tasks.cache_hits").inc(
                len(tasks) - computed)
            logger.info(
                f"round {state.rounds}: evaluated "
                f"{len(to_run_multicore)} multicore candidates "
                f"at fidelity {proposal.fidelity:g}",
                tasks=len(tasks), computed=computed,
                span=spans.current_name() or "search.round")

            for name in to_run_multicore:
                mc, base = parsed[name]
                designs = (parse_design(base),)
                identified = candidates = violations = 0
                storage_bits = 0
                for workload in scaled.workload_list:
                    result = multicore_pass((workload,), hierarchy_config,
                                            designs, mc, scaled)
                    design_result = result.designs[base]
                    meter = design_result.coverage
                    identified += meter.identified
                    candidates += meter.candidates
                    violations += meter.violations
                    storage_bits = design_result.storage_bits
                state.evaluations[name] = Evaluation(
                    point=points_by_name[name],
                    storage_bits=storage_bits,
                    identified=identified,
                    candidates=candidates,
                    violations=violations,
                    energy_reduction=0.0,
                    access_time_reduction=0.0,
                    fidelity=proposal.fidelity,
                )
                state.evaluated += 1
                registry.counter("search.candidates.evaluated").inc()

        scores: Dict[str, float] = {}
        for name in points_by_name:
            evaluation = state.evaluations.get(name)
            if evaluation is None or name in state.pruned_names:
                scores[name] = INFEASIBLE
            else:
                scores[name] = objective.score(evaluation)
        return scores

    if include_baselines:
        evaluate(Proposal(baseline_points()))

    stream = sampler.proposals(space)
    scores: Optional[Dict[str, float]] = None
    while True:
        try:
            proposal = stream.send(scores) if scores is not None \
                else next(stream)
        except StopIteration:
            break
        scores = evaluate(proposal)

    # Rank only full-trace evaluations: prefix scores steer the samplers
    # but never the report.
    full = [evaluation for evaluation in state.evaluations.values()
            if evaluation.fidelity >= 1.0]
    infeasible = sum(1 for evaluation in full
                     if not objective.feasible(evaluation))
    ranked = sorted(
        (evaluation for evaluation in full if objective.feasible(evaluation)),
        key=objective.sort_key,
    )
    frontier = pareto_frontier([
        SweepPoint(design_name=evaluation.point.name,
                   storage_bits=evaluation.storage_bits,
                   coverage=evaluation.coverage,
                   violations=evaluation.violations)
        for evaluation in full
    ])

    return SearchReport(
        space_name=space.name,
        space_size=space.size,
        sampler=sampler.describe(),
        objective=objective,
        settings=settings,
        rounds=state.rounds,
        proposed=state.proposed,
        evaluated=state.evaluated,
        pruned=state.pruned,
        deduped=state.deduped,
        infeasible=infeasible,
        tasks_planned=state.tasks_planned,
        tasks_computed=state.tasks_computed,
        ranked=ranked,
        frontier=frontier,
        top_k=top_k,
    )
