"""Design-space search: parameterized MNM spaces, samplers, autotuner.

The subsystem answers "what is the best MNM configuration under this
hardware budget?" instead of only re-measuring the paper's hand-picked
tables:

* :mod:`repro.search.space` — declarative, picklable search spaces over
  every MNM knob; each point materialises to a named
  :class:`~repro.core.machine.MNMDesign` via the preset grammar.
* :mod:`repro.search.samplers` — deterministic seeded strategies (grid,
  random, hill-climb, successive halving) speaking an ask/tell generator
  protocol.
* :mod:`repro.search.objectives` — multi-objective scoring with hard
  budget/coverage constraints.
* :mod:`repro.search.runner` — the loop that fans candidate evaluations
  out over the parallel executor, dedupes through the pass cache,
  checkpoints through the run journal, and renders byte-stable ranked
  reports with a Pareto frontier.

Exposed on the CLI as ``repro-mnm search``.
"""

from repro.search.objectives import Evaluation, Objective
from repro.search.runner import SearchReport, baseline_points, run_search
from repro.search.samplers import (
    GridSampler,
    HillClimbSampler,
    Proposal,
    RandomSampler,
    Sampler,
    SuccessiveHalvingSampler,
    make_sampler,
    SAMPLER_NAMES,
)
from repro.search.space import (
    DesignPoint,
    FamilySpace,
    SearchSpace,
    space_names,
    space_preset,
)

__all__ = [
    "DesignPoint",
    "Evaluation",
    "FamilySpace",
    "GridSampler",
    "HillClimbSampler",
    "Objective",
    "Proposal",
    "RandomSampler",
    "Sampler",
    "SAMPLER_NAMES",
    "SearchReport",
    "SearchSpace",
    "SuccessiveHalvingSampler",
    "baseline_points",
    "make_sampler",
    "run_search",
    "space_names",
    "space_preset",
]
