"""Deterministic seeded samplers over a :class:`~repro.search.space.SearchSpace`.

Samplers drive the search loop through an ask/tell protocol: the runner
iterates :meth:`Sampler.proposals`, a generator yielding
:class:`Proposal` batches and receiving back a ``{design name: score}``
dict for the batch just evaluated (higher scores are better; infeasible
candidates come back as ``-inf``).  Batching is what lets the runner fan a
whole round out across ``--jobs`` worker processes at once.

Every sampler is a pure function of ``(space, seed)`` plus the observed
scores: randomness comes only from a private :class:`random.Random`
seeded at construction, ranking ties break on ``(score, name)``, and no
sampler reads the wall clock — so the same invocation always proposes the
same candidates in the same order, which is the contract that makes
search reports byte-stable across ``--jobs`` values and ``--resume``.

Samplers:

* :class:`GridSampler` — exhaustive enumeration in global index order.
* :class:`RandomSampler` — ``num_samples`` distinct points, seeded,
  without replacement (degrades to the full grid when the space is small).
* :class:`HillClimbSampler` — seeded random restarts, then repeated
  one-knob neighbourhood moves from the incumbent (local search).
* :class:`SuccessiveHalvingSampler` — evaluates a large cohort on a short
  trace prefix (low *fidelity*) and promotes the surviving fraction rung
  by rung to the full trace.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from repro.search.space import DesignPoint, SearchSpace

#: The sampler generator type: yields proposals, receives per-name scores.
ProposalStream = Generator["Proposal", Dict[str, float], None]


@dataclass(frozen=True)
class Proposal:
    """One batch of candidates to evaluate at a given trace fidelity.

    ``fidelity`` is the fraction of the full trace length the batch should
    be scored on (1.0 = the full trace); only the successive-halving
    sampler proposes less than 1.0.
    """

    points: Tuple[DesignPoint, ...]
    fidelity: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.fidelity <= 1.0:
            raise ValueError(f"fidelity must be in (0, 1], got {self.fidelity}")


def _best_name(scores: Dict[str, float]) -> Optional[str]:
    """Highest-scoring name; ties break lexicographically (deterministic)."""
    if not scores:
        return None
    return min(scores.items(), key=lambda item: (-item[1], item[0]))[0]


class Sampler(ABC):
    """Base class: a named, seeded proposal strategy."""

    name: str = "abstract"

    @abstractmethod
    def proposals(self, space: SearchSpace) -> ProposalStream:
        """Yield proposal batches; receives the batch's scores via send()."""

    def describe(self) -> str:
        """Human-readable identity for reports."""
        return self.name


class GridSampler(Sampler):
    """Every point of the space, in global index order, one batch."""

    name = "grid"

    def __init__(self, limit: Optional[int] = None) -> None:
        if limit is not None and limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        self.limit = limit

    def proposals(self, space: SearchSpace) -> ProposalStream:
        count = space.size if self.limit is None else min(self.limit,
                                                          space.size)
        points = tuple(space.point(index) for index in range(count))
        yield Proposal(points)

    def describe(self) -> str:
        return "grid" if self.limit is None else f"grid(limit={self.limit})"


class RandomSampler(Sampler):
    """``num_samples`` distinct points drawn without replacement."""

    name = "random"

    def __init__(self, num_samples: int, seed: int = 0) -> None:
        if num_samples < 1:
            raise ValueError(f"num_samples must be >= 1, got {num_samples}")
        self.num_samples = num_samples
        self.seed = seed

    def _indices(self, space: SearchSpace) -> List[int]:
        count = min(self.num_samples, space.size)
        rng = random.Random(self.seed)
        return sorted(rng.sample(range(space.size), count))

    def proposals(self, space: SearchSpace) -> ProposalStream:
        points = tuple(space.point(index) for index in self._indices(space))
        yield Proposal(points)

    def describe(self) -> str:
        return f"random(n={self.num_samples}, seed={self.seed})"


class HillClimbSampler(Sampler):
    """Seeded restarts plus one-knob neighbourhood moves from the incumbent.

    Round 0 proposes ``num_restarts`` random points.  Each later round
    proposes the not-yet-visited neighbours (one parameter step away,
    same family) of the best point seen so far; the climb stops when a
    round fails to improve the incumbent, when the neighbourhood is
    exhausted, or after ``max_rounds`` rounds.
    """

    name = "hillclimb"

    def __init__(self, num_restarts: int = 8, max_rounds: int = 16,
                 seed: int = 0) -> None:
        if num_restarts < 1:
            raise ValueError(f"num_restarts must be >= 1, got {num_restarts}")
        if max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
        self.num_restarts = num_restarts
        self.max_rounds = max_rounds
        self.seed = seed

    def proposals(self, space: SearchSpace) -> ProposalStream:
        rng = random.Random(self.seed)
        count = min(self.num_restarts, space.size)
        starts = sorted(rng.sample(range(space.size), count))
        visited = set(starts)
        by_name: Dict[str, int] = {}
        points = []
        for index in starts:
            point = space.point(index)
            by_name[point.name] = index
            points.append(point)

        scores = yield Proposal(tuple(points))
        best_name = _best_name(scores)
        if best_name is None:
            return
        best_index = by_name[best_name]
        best_score = scores[best_name]

        for _round in range(self.max_rounds):
            frontier = [index for index in space.neighbors(best_index)
                        if index not in visited]
            if not frontier:
                return
            visited.update(frontier)
            by_name = {}
            points = []
            for index in frontier:
                point = space.point(index)
                by_name[point.name] = index
                points.append(point)
            scores = yield Proposal(tuple(points))
            challenger = _best_name(scores)
            if challenger is None or scores[challenger] <= best_score:
                return  # local optimum
            best_index = by_name[challenger]
            best_score = scores[challenger]

    def describe(self) -> str:
        return (f"hillclimb(restarts={self.num_restarts}, "
                f"max_rounds={self.max_rounds}, seed={self.seed})")


class SuccessiveHalvingSampler(Sampler):
    """Cohort on a short trace prefix; survivors promoted to longer ones.

    Rung ``r`` of ``R`` evaluates its cohort at fidelity ``eta**(r-R+1)``
    (the last rung is always the full trace) and promotes the top
    ``1/eta`` fraction.  Low-fidelity scores only decide promotion; the
    runner ranks the final report exclusively on full-trace evaluations.
    """

    name = "halving"

    def __init__(self, num_samples: int = 27, eta: int = 3,
                 num_rungs: int = 3, seed: int = 0) -> None:
        if num_samples < 1:
            raise ValueError(f"num_samples must be >= 1, got {num_samples}")
        if eta < 2:
            raise ValueError(f"eta must be >= 2, got {eta}")
        if num_rungs < 1:
            raise ValueError(f"num_rungs must be >= 1, got {num_rungs}")
        self.num_samples = num_samples
        self.eta = eta
        self.num_rungs = num_rungs
        self.seed = seed

    def proposals(self, space: SearchSpace) -> ProposalStream:
        rng = random.Random(self.seed)
        count = min(self.num_samples, space.size)
        indices = sorted(rng.sample(range(space.size), count))
        cohort = [space.point(index) for index in indices]

        for rung in range(self.num_rungs):
            fidelity = float(self.eta) ** (rung - self.num_rungs + 1)
            scores = yield Proposal(tuple(cohort), fidelity=fidelity)
            if rung == self.num_rungs - 1:
                return
            survivors = max(1, len(cohort) // self.eta)
            ranked = sorted(
                cohort,
                key=lambda point: (-scores.get(point.name, float("-inf")),
                                   point.name),
            )
            cohort = ranked[:survivors]
            if not cohort:
                return

    def describe(self) -> str:
        return (f"halving(n={self.num_samples}, eta={self.eta}, "
                f"rungs={self.num_rungs}, seed={self.seed})")


#: CLI sampler ids.
SAMPLER_NAMES = ("grid", "random", "hillclimb", "halving")


def make_sampler(name: str, seed: int = 0,
                 num_samples: int = 32) -> Sampler:
    """Build a sampler from its CLI id (``--sampler`` / ``--samples``)."""
    if name == "grid":
        return GridSampler()
    if name == "random":
        return RandomSampler(num_samples, seed=seed)
    if name == "hillclimb":
        return HillClimbSampler(num_restarts=max(1, num_samples // 4),
                                seed=seed)
    if name == "halving":
        return SuccessiveHalvingSampler(num_samples=num_samples, seed=seed)
    raise ValueError(
        f"unknown sampler {name!r}; choose from {', '.join(SAMPLER_NAMES)}")
