"""Scoring and hard constraints for design-space search candidates.

An :class:`Evaluation` aggregates one candidate's measurements across the
workload suite (coverage counts sum over workloads; modeled energy and
access-time reductions — both computed by the reference pass through
:mod:`repro.power` — average over workloads).  An :class:`Objective` turns
an evaluation into a scalar score (higher is better) under two hard
constraints:

* ``budget_bits`` — "the best design under B bits": candidates whose
  filter state exceeds the budget are infeasible.  Storage is a pure
  function of the design and hierarchy, so the runner prunes over-budget
  candidates *before* spending any simulation on them.
* ``min_coverage`` — "at least X% coverage": checked after evaluation.

Infeasible candidates score ``-inf`` so samplers still receive a total
order, and ties between feasible candidates break on smaller storage then
name — part of the byte-stable report contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.search.space import DesignPoint

#: Scoring metrics an objective can rank by.
METRICS = ("coverage", "coverage-per-kb", "energy", "access-time")

#: Score of an infeasible candidate.
INFEASIBLE = float("-inf")


@dataclass(frozen=True)
class Evaluation:
    """One candidate's suite-aggregated measurements at one fidelity."""

    point: DesignPoint
    storage_bits: int
    identified: int
    candidates: int
    violations: int
    energy_reduction: float
    access_time_reduction: float
    fidelity: float = 1.0

    @property
    def coverage(self) -> float:
        """Suite-wide coverage: identified misses over identifiable ones."""
        return self.identified / self.candidates if self.candidates else 0.0

    @property
    def storage_kb(self) -> float:
        return self.storage_bits / 8 / 1024

    @property
    def coverage_per_kb(self) -> float:
        """Coverage per KB of filter state.

        Zero-storage designs with nonzero coverage are infinitely
        efficient by this metric (same contract as
        :attr:`repro.analysis.sweep.SweepPoint.coverage_per_kb`).
        """
        kb = self.storage_kb
        if kb:
            return self.coverage / kb
        return float("inf") if self.coverage else 0.0


@dataclass(frozen=True)
class Objective:
    """A scoring metric plus hard feasibility constraints."""

    metric: str = "coverage"
    budget_bits: Optional[int] = None
    min_coverage: Optional[float] = None

    def __post_init__(self) -> None:
        if self.metric not in METRICS:
            raise ValueError(
                f"unknown metric {self.metric!r}; "
                f"choose from {', '.join(METRICS)}")
        if self.budget_bits is not None and self.budget_bits < 1:
            raise ValueError(
                f"budget_bits must be >= 1, got {self.budget_bits}")
        if (self.min_coverage is not None
                and not 0.0 <= self.min_coverage <= 1.0):
            raise ValueError(
                f"min_coverage must be in [0, 1], got {self.min_coverage}")

    # -- constraints -------------------------------------------------------

    def within_budget(self, storage_bits: int) -> bool:
        """The static (pre-simulation) constraint on filter state."""
        return self.budget_bits is None or storage_bits <= self.budget_bits

    def feasible(self, evaluation: Evaluation) -> bool:
        """Both hard constraints, post-evaluation."""
        if not self.within_budget(evaluation.storage_bits):
            return False
        if (self.min_coverage is not None
                and evaluation.coverage < self.min_coverage):
            return False
        return True

    # -- scoring -----------------------------------------------------------

    def score(self, evaluation: Evaluation) -> float:
        """Scalar score, higher better; ``-inf`` when infeasible."""
        if not self.feasible(evaluation):
            return INFEASIBLE
        if self.metric == "coverage":
            return evaluation.coverage
        if self.metric == "coverage-per-kb":
            return evaluation.coverage_per_kb
        if self.metric == "energy":
            return evaluation.energy_reduction
        return evaluation.access_time_reduction  # "access-time"

    def sort_key(self, evaluation: Evaluation) -> Tuple[float, int, str]:
        """Deterministic ranking key: score desc, storage asc, name asc."""
        return (-self.score(evaluation), evaluation.storage_bits,
                evaluation.point.name)

    def describe(self) -> str:
        parts = [self.metric]
        if self.budget_bits is not None:
            parts.append(f"budget<={self.budget_bits}bits")
        if self.min_coverage is not None:
            parts.append(f"coverage>={self.min_coverage:.2f}")
        return ", ".join(parts)
