"""Tests for the hardware-budget reports."""

import pytest

from repro.cache.presets import paper_hierarchy_5level
from repro.core.presets import (
    hmnm_design,
    parse_design,
    perfect_design,
    smnm_design,
    tmnm_design,
)
from repro.power.budget import DesignBudget, budget_table, design_budget
from repro.experiments.cli import main


class TestDesignBudget:
    def test_perfect_is_free(self):
        budget = design_budget(paper_hierarchy_5level(), perfect_design())
        assert budget.storage_bits == 0
        assert budget.query_nj == 0.0
        assert budget.query_vs_l2 == 0.0

    def test_hybrids_grow_with_complexity(self):
        budgets = [design_budget(paper_hierarchy_5level(), hmnm_design(v))
                   for v in (1, 2, 3, 4)]
        storages = [b.storage_bits for b in budgets]
        energies = [b.query_nj for b in budgets]
        assert storages == sorted(storages)
        assert energies == sorted(energies)

    def test_smnm_reports_logic_area(self):
        budget = design_budget(paper_hierarchy_5level(), smnm_design(20, 3))
        assert budget.logic_gates > 0
        table_only = design_budget(paper_hierarchy_5level(),
                                   tmnm_design(12, 3))
        assert table_only.logic_gates == 0

    def test_query_cheaper_than_l2_for_all_paper_designs(self):
        """The paper's premise: consulting the MNM costs a fraction of the
        lookups it can save."""
        from repro.core.presets import all_paper_design_names

        for name in all_paper_design_names():
            budget = design_budget(paper_hierarchy_5level(),
                                   parse_design(name))
            assert budget.query_vs_l2 < 1.0, name

    def test_storage_kb(self):
        budget = DesignBudget("x", storage_bits=8192, logic_gates=0,
                              query_nj=0.1, update_nj=0.05, l2_probe_nj=0.5)
        assert budget.storage_kb == 1.0
        assert budget.query_vs_l2 == pytest.approx(0.2)


class TestBudgetTable:
    def test_renders_rows(self):
        text = budget_table(paper_hierarchy_5level(),
                            [hmnm_design(1), perfect_design()])
        assert "HMNM1" in text
        assert "PERFECT" in text
        assert "query vs L2 probe" in text


class TestDesignsCLI:
    def test_named_designs(self, capsys):
        assert main(["designs", "HMNM2", "PERFECT"]) == 0
        out = capsys.readouterr().out
        assert "HMNM2" in out
        assert "PERFECT" in out

    def test_default_lists_all_figure_configs(self, capsys):
        assert main(["designs"]) == 0
        out = capsys.readouterr().out
        for name in ("RMNM_128_1", "SMNM_20x3", "TMNM_12x3", "CMNM_8_12",
                     "HMNM4"):
            assert name in out
