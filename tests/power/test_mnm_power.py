"""Tests for MNM structure energy pricing."""

import pytest

from repro.cache.cache import AccessKind
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.presets import paper_hierarchy_5level
from repro.core.machine import MostlyNoMachine
from repro.core.presets import (
    hmnm_design,
    null_design,
    parse_design,
    perfect_design,
    rmnm_design,
    smnm_design,
)
from repro.power.cacti import cache_read_energy_nj
from repro.power.mnm_power import (
    _rmnm_lookup_nj,
    component_lookup_nj,
    machine_query_energy_nj,
    machine_update_energy_nj,
)


def make_machine(design):
    return MostlyNoMachine(CacheHierarchy(paper_hierarchy_5level()), design)


class TestQueryEnergy:
    def test_perfect_is_free(self):
        machine = make_machine(perfect_design())
        assert machine_query_energy_nj(machine) == 0.0
        assert machine_update_energy_nj(machine) == 0.0

    def test_null_is_free(self):
        machine = make_machine(null_design())
        assert machine_query_energy_nj(machine) == 0.0

    def test_hybrids_grow_with_complexity(self):
        energies = [machine_query_energy_nj(make_machine(hmnm_design(v)))
                    for v in (1, 2, 3, 4)]
        assert energies == sorted(energies)
        assert energies[0] > 0.0

    def test_mnm_cheaper_than_l2_probe(self):
        """The whole point: consulting the MNM must cost less than the
        lookups it can save (the paper's premise that MNM structures are
        much smaller than the caches)."""
        hierarchy = paper_hierarchy_5level()
        l2 = hierarchy.tiers[1].configs[0]
        for variant in (1, 2, 3, 4):
            machine = make_machine(hmnm_design(variant))
            assert machine_query_energy_nj(machine) < cache_read_energy_nj(l2)

    def test_rmnm_counted_once(self):
        shared_only = make_machine(rmnm_design(512, 2))
        energy = machine_query_energy_nj(shared_only)
        assert energy > 0.0
        # doubling lanes (same shared structure) does not double energy:
        # compare against a 3-level hierarchy with fewer lanes
        assert energy < 2 * machine_query_energy_nj(shared_only)

    def test_update_cheaper_than_query(self):
        machine = make_machine(hmnm_design(4))
        assert (machine_update_energy_nj(machine)
                < machine_query_energy_nj(machine))


class TestComponentPricing:
    def test_all_components_priced(self):
        machine = make_machine(hmnm_design(4))
        for name in machine.tracked_cache_names():
            assert component_lookup_nj(machine.filter_for(name)) > 0.0

    def test_query_consistent_with_components(self):
        machine = make_machine(hmnm_design(2))
        per_level = sum(component_lookup_nj(machine.filter_for(n))
                        for n in machine.tracked_cache_names())
        assert machine_query_energy_nj(machine) > per_level  # + RMNM


class TestRMNMPricingGuard:
    def test_pricing_machine_without_rmnm_raises(self):
        """The no-RMNM guard must fire as an explicit raise — not an
        assert — so it survives ``python -O`` (rule R005)."""
        machine = make_machine(smnm_design(12, 3))
        assert machine.rmnm is None
        with pytest.raises(ValueError, match="no shared RMNM"):
            _rmnm_lookup_nj(machine)
