"""Tests for the analytical energy/delay models."""

import pytest

from repro.cache.cache import CacheConfig
from repro.cache.presets import paper_hierarchy_5level
from repro.power.cacti import (
    cache_access_time_ns,
    cache_read_energy_nj,
    cache_write_energy_nj,
    logic_energy_nj,
    small_array_energy_nj,
    sram_read_energy_nj,
)


def config(size=4096, assoc=1, block=32, ports=1):
    return CacheConfig(name="c", level=1, size_bytes=size,
                       associativity=assoc, block_size=block, hit_latency=2,
                       ports=ports)


class TestMonotonicity:
    """The experiments only need the model to order organisations the way a
    physical model would."""

    def test_energy_grows_with_capacity(self):
        sizes = [4096, 16384, 131072, 2 * 1024 * 1024]
        energies = [cache_read_energy_nj(config(size=s)) for s in sizes]
        assert energies == sorted(energies)
        assert energies[-1] > 5 * energies[0]

    def test_energy_grows_with_associativity(self):
        assert (cache_read_energy_nj(config(assoc=8))
                > cache_read_energy_nj(config(assoc=1)))

    def test_energy_grows_with_ports(self):
        assert (cache_read_energy_nj(config(ports=2))
                > cache_read_energy_nj(config(ports=1)))

    def test_write_costs_more_than_read(self):
        assert cache_write_energy_nj(config()) > cache_read_energy_nj(config())

    def test_access_time_grows_with_capacity(self):
        assert (cache_access_time_ns(config(size=2 * 1024 * 1024, assoc=8))
                > cache_access_time_ns(config(size=4096)))


class TestCalibration:
    def test_l1_anchor(self):
        """~0.2-0.6 nJ for the paper's 4KB L1 (CACTI 3.1 ballpark)."""
        energy = cache_read_energy_nj(config())
        assert 0.1 < energy < 1.0

    def test_l5_anchor(self):
        energy = cache_read_energy_nj(
            config(size=2 * 1024 * 1024, assoc=8, block=128))
        assert 4.0 < energy < 20.0

    def test_hierarchy_ladder_strictly_increasing(self):
        hierarchy = paper_hierarchy_5level()
        energies = [cache_read_energy_nj(tier.configs[-1])
                    for tier in hierarchy.tiers]
        assert energies == sorted(energies)


class TestSmallStructures:
    def test_small_array_much_cheaper_than_caches(self):
        """MNM tables must cost well under the caches they shadow."""
        table = small_array_energy_nj(12 * 1024 * 3)  # TMNM_12x3-ish bits
        l2 = cache_read_energy_nj(config(size=16 * 1024, assoc=2))
        assert table < l2 / 3

    def test_small_array_zero_bits(self):
        assert small_array_energy_nj(0) == 0.0

    def test_small_array_monotone(self):
        assert small_array_energy_nj(1 << 16) > small_array_energy_nj(1 << 8)

    def test_logic_energy_linear(self):
        assert logic_energy_nj(2000) == pytest.approx(2 * logic_energy_nj(1000))
        assert logic_energy_nj(0) == 0.0
        assert logic_energy_nj(-5) == 0.0

    def test_sram_validation(self):
        with pytest.raises(ValueError):
            sram_read_energy_nj(0)
        with pytest.raises(ValueError):
            sram_read_energy_nj(64, associativity=0)
        with pytest.raises(ValueError):
            sram_read_energy_nj(64, ports=0)
