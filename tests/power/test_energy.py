"""Tests for per-run energy accounting."""

import pytest

from repro.cache.cache import AccessKind
from repro.cache.hierarchy import AccessOutcome
from repro.core.base import Placement
from repro.power.energy import EnergyAccountant, EnergyTotals, HierarchyEnergyModel
from tests.conftest import small_hierarchy_config


CONFIG = small_hierarchy_config(3)


def outcome(supplier, kind=AccessKind.LOAD, tiers=3):
    hits = [False] * tiers
    if supplier is not None:
        hits[supplier - 1] = True
    return AccessOutcome(address=0x1000, kind=kind, hits=tuple(hits),
                         supplier=supplier)


class TestBaselineAccounting:
    def test_l1_hit_costs_one_probe(self):
        model = HierarchyEnergyModel(CONFIG)
        accountant = EnergyAccountant(model)
        accountant.account(outcome(1))
        totals = accountant.totals
        assert totals.cache_probe_nj == pytest.approx(
            model.read_nj(1, AccessKind.LOAD))
        assert totals.miss_probe_nj == 0.0
        assert totals.refill_nj == 0.0

    def test_memory_supply_probes_and_refills_everything(self):
        model = HierarchyEnergyModel(CONFIG)
        accountant = EnergyAccountant(model)
        accountant.account(outcome(None))
        totals = accountant.totals
        expected_probes = sum(model.read_nj(t, AccessKind.LOAD)
                              for t in (1, 2, 3))
        expected_refills = sum(model.write_nj(t, AccessKind.LOAD)
                               for t in (1, 2, 3))
        assert totals.cache_probe_nj == pytest.approx(expected_probes)
        assert totals.miss_probe_nj == pytest.approx(expected_probes)
        assert totals.refill_nj == pytest.approx(expected_refills)

    def test_mid_hierarchy_supply(self):
        model = HierarchyEnergyModel(CONFIG)
        accountant = EnergyAccountant(model)
        accountant.account(outcome(3))
        totals = accountant.totals
        miss_part = model.read_nj(1, AccessKind.LOAD) + model.read_nj(
            2, AccessKind.LOAD)
        assert totals.miss_probe_nj == pytest.approx(miss_part)
        assert totals.cache_probe_nj == pytest.approx(
            miss_part + model.read_nj(3, AccessKind.LOAD))

    def test_instruction_side_uses_il1(self):
        model = HierarchyEnergyModel(CONFIG)
        accountant = EnergyAccountant(model)
        accountant.account(outcome(1, kind=AccessKind.INSTRUCTION))
        assert accountant.totals.cache_probe_nj == pytest.approx(
            model.read_nj(1, AccessKind.INSTRUCTION))

    def test_miss_fraction(self):
        model = HierarchyEnergyModel(CONFIG)
        accountant = EnergyAccountant(model)
        accountant.account(outcome(1))
        accountant.account(outcome(None))
        fraction = accountant.totals.miss_fraction
        assert 0.0 < fraction < 1.0

    def test_reset(self):
        model = HierarchyEnergyModel(CONFIG)
        accountant = EnergyAccountant(model)
        accountant.account(outcome(None))
        accountant.reset()
        assert accountant.totals.total_nj == 0.0
        assert accountant.totals.accesses == 0


class TestBypassAccounting:
    def test_bypassed_tier_saves_its_probe(self):
        model = HierarchyEnergyModel(CONFIG)
        plain = EnergyAccountant(model)
        bypassing = EnergyAccountant(model)
        plain.account(outcome(3))
        bypassing.account(outcome(3), bits=(False, True, False))
        saved = plain.totals.cache_probe_nj - bypassing.totals.cache_probe_nj
        assert saved == pytest.approx(model.read_nj(2, AccessKind.LOAD))

    def test_refills_unaffected_by_bypass(self):
        model = HierarchyEnergyModel(CONFIG)
        a = EnergyAccountant(model)
        b = EnergyAccountant(model)
        a.account(outcome(None))
        b.account(outcome(None), bits=(False, True, True))
        assert a.totals.refill_nj == pytest.approx(b.totals.refill_nj)


class TestMNMEnergy:
    def test_parallel_pays_on_every_access(self):
        model = HierarchyEnergyModel(CONFIG)
        accountant = EnergyAccountant(model, placement=Placement.PARALLEL,
                                      mnm_query_nj=0.5)
        accountant.account(outcome(1), bits=(False, False, False))
        assert accountant.totals.mnm_nj == pytest.approx(0.5)

    def test_serial_pays_only_past_l1(self):
        model = HierarchyEnergyModel(CONFIG)
        accountant = EnergyAccountant(model, placement=Placement.SERIAL,
                                      mnm_query_nj=0.5)
        accountant.account(outcome(1), bits=(False, False, False))
        assert accountant.totals.mnm_nj == 0.0
        accountant.account(outcome(2), bits=(False, False, False))
        assert accountant.totals.mnm_nj == pytest.approx(0.5)

    def test_update_energy_scales_with_refilled_tiers(self):
        model = HierarchyEnergyModel(CONFIG)
        accountant = EnergyAccountant(model, placement=Placement.SERIAL,
                                      mnm_query_nj=0.0, mnm_update_nj=0.1)
        accountant.account(outcome(None), bits=(False, False, False))
        # 3 tiers missed -> 2 tracked refills -> 2 places + ~2 replaces
        assert accountant.totals.mnm_nj == pytest.approx(0.4)

    def test_no_mnm_charges_nothing(self):
        model = HierarchyEnergyModel(CONFIG)
        accountant = EnergyAccountant(model)
        accountant.account(outcome(None))
        assert accountant.totals.mnm_nj == 0.0


class TestTotals:
    def test_total_includes_everything(self):
        totals = EnergyTotals(cache_probe_nj=1.0, miss_probe_nj=0.5,
                              refill_nj=2.0, mnm_nj=0.25, accesses=3)
        assert totals.cache_nj == 3.0
        assert totals.total_nj == 3.25

    def test_empty_fractions(self):
        assert EnergyTotals().miss_fraction == 0.0
