"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.cache.cache import AccessKind, CacheConfig, CacheSide
from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig, TierConfig


def small_hierarchy_config(levels: int = 3) -> HierarchyConfig:
    """A tiny hierarchy that misses a lot — fast and adversarial for tests.

    Tier 1 is split 256B direct-mapped I/D; deeper tiers are unified and
    grow by 4x with growing block sizes, exercising the granule fan-out
    paths of the MNM.
    """
    tiers = [
        TierConfig.make_split(
            CacheConfig(name="il1", level=1, size_bytes=256, associativity=1,
                        block_size=16, hit_latency=1,
                        side=CacheSide.INSTRUCTION),
            CacheConfig(name="dl1", level=1, size_bytes=256, associativity=1,
                        block_size=16, hit_latency=1, side=CacheSide.DATA),
        )
    ]
    size = 1024
    block = 16
    latency = 4
    for level in range(2, levels + 1):
        tiers.append(TierConfig.make_unified(
            CacheConfig(name=f"ul{level}", level=level, size_bytes=size,
                        associativity=2, block_size=block,
                        hit_latency=latency)
        ))
        size *= 4
        if level >= 2:
            block *= 2
        latency *= 2
    return HierarchyConfig(
        name=f"test-{levels}level", tiers=tuple(tiers), memory_latency=100
    )


@pytest.fixture
def hierarchy3() -> CacheHierarchy:
    """A fresh 3-tier test hierarchy."""
    return CacheHierarchy(small_hierarchy_config(3))


@pytest.fixture
def hierarchy4() -> CacheHierarchy:
    """A fresh 4-tier test hierarchy."""
    return CacheHierarchy(small_hierarchy_config(4))


@pytest.fixture
def rng() -> random.Random:
    return random.Random(12345)


def random_references(rng: random.Random, count: int, span: int = 1 << 16):
    """A mixed random reference stream for soundness tests."""
    references = []
    for _ in range(count):
        address = rng.randrange(span) & ~0x3
        draw = rng.random()
        if draw < 0.2:
            kind = AccessKind.INSTRUCTION
        elif draw < 0.8:
            kind = AccessKind.LOAD
        else:
            kind = AccessKind.STORE
        references.append((address, kind))
    return references
