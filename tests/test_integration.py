"""End-to-end integration tests: cross-module invariants on real workloads.

These tie the whole stack together — workload generation, hierarchy, MNM,
timing, energy, core — and assert the system-level invariants the
experiments rely on.
"""

import pytest

from repro import (
    Placement,
    get_trace,
    paper_hierarchy_5level,
    parse_design,
    run_core_trace,
    run_reference_pass,
)
from repro.cache.presets import hierarchy_preset
from repro.core.presets import (
    cmnm_design,
    hmnm_design,
    perfect_design,
    smnm_design,
    tmnm_design,
)
from repro.cpu.core import paper_core
from tests.conftest import small_hierarchy_config

INSTRUCTIONS = 12_000
WARMUP = 4_000


@pytest.fixture(scope="module")
def gcc_trace():
    return get_trace("gcc", INSTRUCTIONS, seed=0)


@pytest.fixture(scope="module")
def gcc_refs(gcc_trace):
    return list(gcc_trace.memory_references())


class TestOracleBounds:
    """The perfect MNM bounds every real design, in every metric."""

    def test_coverage_bounded_by_one_and_real_below_perfect(self, gcc_refs):
        designs = [hmnm_design(4), perfect_design()]
        result = run_reference_pass(gcc_refs, paper_hierarchy_5level(),
                                    designs, "gcc", warmup=len(gcc_refs) // 3)
        perfect = result.designs["PERFECT"].coverage
        real = result.designs["HMNM4"].coverage
        assert perfect.coverage == 1.0
        assert real.coverage <= 1.0
        assert real.identified <= perfect.identified
        assert real.candidates == perfect.candidates

    def test_access_time_ordering(self, gcc_refs):
        designs = [tmnm_design(10, 1), hmnm_design(4), perfect_design()]
        result = run_reference_pass(gcc_refs, paper_hierarchy_5level(),
                                    designs, "gcc", warmup=len(gcc_refs) // 3)
        baseline = result.baseline_access_time
        small = result.designs["TMNM_10x1"].access_time
        hybrid = result.designs["HMNM4"].access_time
        oracle = result.designs["PERFECT"].access_time
        assert oracle <= hybrid <= small <= baseline

    def test_cycles_ordering(self, gcc_trace):
        hierarchy = paper_hierarchy_5level()
        base = run_core_trace(gcc_trace, hierarchy, None, warmup=WARMUP)
        hybrid = run_core_trace(gcc_trace, hierarchy, hmnm_design(4),
                                warmup=WARMUP)
        oracle = run_core_trace(gcc_trace, hierarchy, perfect_design(),
                                warmup=WARMUP)
        assert oracle.cycles <= hybrid.cycles <= base.cycles


class TestCompositionMonotonicity:
    """Adding components to a hybrid can only add coverage."""

    def test_hybrid_dominates_components(self, gcc_refs):
        # HMNM4 contains TMNM_12x3 at levels 4-5 and an RMNM everywhere;
        # compare against the pure designs on the same pass
        designs = [smnm_design(20, 3), hmnm_design(4)]
        result = run_reference_pass(gcc_refs, paper_hierarchy_5level(),
                                    designs, "gcc", warmup=len(gcc_refs) // 3)
        smnm = result.designs["SMNM_20x3"].coverage.coverage
        hybrid = result.designs["HMNM4"].coverage.coverage
        assert hybrid >= smnm - 1e-9


class TestPlacementInvariance:
    """Coverage is a property of the technique, not the MNM's position
    (Section 4.2 of the paper)."""

    def test_coverage_identical_across_placements(self, gcc_refs):
        results = {}
        for placement in Placement:
            design = cmnm_design(4, 10).with_placement(placement)
            result = run_reference_pass(
                gcc_refs, paper_hierarchy_5level(), [design], "gcc",
                warmup=len(gcc_refs) // 3)
            results[placement] = result.designs[design.name].coverage.coverage
        values = set(round(v, 12) for v in results.values())
        assert len(values) == 1

    def test_serial_energy_at_most_parallel(self, gcc_refs):
        energies = {}
        for placement in (Placement.PARALLEL, Placement.SERIAL,
                          Placement.DISTRIBUTED):
            design = hmnm_design(2).with_placement(placement)
            result = run_reference_pass(
                gcc_refs, paper_hierarchy_5level(), [design], "gcc",
                warmup=len(gcc_refs) // 3)
            energies[placement] = result.designs[design.name].energy.mnm_nj
        assert energies[Placement.SERIAL] <= energies[Placement.PARALLEL]
        assert (energies[Placement.DISTRIBUTED]
                <= energies[Placement.SERIAL] + 1e-6)


class TestDeterminism:
    def test_identical_runs_bit_identical(self, gcc_trace):
        hierarchy = paper_hierarchy_5level()
        a = run_core_trace(gcc_trace, hierarchy, hmnm_design(2),
                           warmup=WARMUP)
        b = run_core_trace(gcc_trace, hierarchy, hmnm_design(2),
                           warmup=WARMUP)
        assert a.cycles == b.cycles
        assert a.energy.total_nj == b.energy.total_nj
        assert a.coverage.identified == b.coverage.identified

    def test_seed_changes_trace_and_results(self):
        hierarchy = paper_hierarchy_5level()
        a = run_core_trace(get_trace("vpr", 6000, seed=0), hierarchy, None)
        b = run_core_trace(get_trace("vpr", 6000, seed=9), hierarchy, None)
        assert a.cycles != b.cycles


class TestCrossHierarchy:
    @pytest.mark.parametrize("preset", ["2level", "3level", "5level",
                                        "7level"])
    def test_every_preset_supports_full_runs(self, preset, gcc_trace):
        hierarchy = hierarchy_preset(preset)
        run = run_core_trace(gcc_trace, hierarchy, hmnm_design(1),
                             core_config=paper_core(4), warmup=WARMUP)
        assert run.cycles > 0
        assert run.coverage.violations == 0

    def test_deeper_hierarchies_offer_more_candidates(self, gcc_refs):
        candidates = {}
        for preset in ("2level", "5level"):
            result = run_reference_pass(
                gcc_refs, hierarchy_preset(preset), [perfect_design()],
                "gcc", warmup=len(gcc_refs) // 3)
            candidates[preset] = result.designs["PERFECT"].coverage.candidates
        assert candidates["5level"] > candidates["2level"]


class TestEnergyConsistency:
    def test_baseline_energy_identical_across_design_runs(self, gcc_refs):
        """The baseline numbers embedded in a pass must not depend on which
        designs ride along."""
        a = run_reference_pass(gcc_refs, paper_hierarchy_5level(),
                               [tmnm_design(10, 1)], "gcc")
        b = run_reference_pass(gcc_refs, paper_hierarchy_5level(),
                               [hmnm_design(4), perfect_design()], "gcc")
        assert a.baseline_access_time == b.baseline_access_time
        assert a.baseline_energy.total_nj == pytest.approx(
            b.baseline_energy.total_nj)

    def test_perfect_energy_never_exceeds_baseline(self, gcc_refs):
        result = run_reference_pass(
            gcc_refs, paper_hierarchy_5level(),
            [perfect_design().with_placement(Placement.SERIAL)], "gcc")
        assert (result.designs["PERFECT"].energy.total_nj
                <= result.baseline_energy.total_nj)
