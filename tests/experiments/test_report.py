"""Tests for the markdown report generator."""

import pytest

from repro.experiments.base import ExperimentResult, ExperimentSettings
from repro.experiments.cli import main
from repro.experiments.report import (
    generate_report,
    render_markdown_report,
)

TINY = ExperimentSettings(num_instructions=4000, warmup_fraction=0.25,
                          workloads=("twolf",))


def demo_result():
    return ExperimentResult(
        experiment_id="fig13",
        title="CMNM coverage [%]",
        headers=["app", "CMNM_2_9", "CMNM_8_12"],
        rows=[["twolf", 20.0, 90.0], ["Arith. Mean", 20.0, 90.0]],
        notes="a note",
        paper_reference="Figure 13",
    )


class TestRenderMarkdown:
    def test_structure(self):
        markdown = render_markdown_report([demo_result()], TINY)
        assert markdown.startswith("# MNM reproduction report")
        assert "## fig13 — CMNM coverage [%]" in markdown
        assert "| app | CMNM_2_9 | CMNM_8_12 |" in markdown
        assert "| twolf | 20.0 | 90.0 |" in markdown
        assert "> a note" in markdown
        assert "twolf" in markdown

    def test_chart_included_for_known_figures(self):
        markdown = render_markdown_report([demo_result()], TINY)
        assert "```" in markdown
        assert "█" in markdown

    def test_charts_can_be_disabled(self):
        markdown = render_markdown_report([demo_result()], TINY,
                                          with_charts=False)
        assert "█" not in markdown

    def test_settings_recorded(self):
        markdown = render_markdown_report([], TINY)
        assert "4000 instructions" in markdown
        assert "seed: 0" in markdown


class TestGenerateReport:
    def test_selected_experiments(self):
        markdown = generate_report(TINY, experiments=["table1", "table3"])
        assert "## table1" in markdown
        assert "## table3" in markdown
        assert "## fig02" not in markdown

    def test_skip_heavy_drops_core_experiments(self):
        markdown = generate_report(TINY, experiments=None, skip_heavy=True,
                                   with_charts=False)
        assert "## fig15" not in markdown
        assert "## fig10" in markdown


class TestReportCLI:
    def test_report_command_writes_file(self, tmp_path, capsys):
        path = tmp_path / "out.md"
        code = main([
            "report", "--skip-heavy", "--instructions", "4000",
            "--warmup-fraction", "0.25", "--workloads", "twolf",
            "--report-out", str(path),
        ])
        assert code == 0
        content = path.read_text()
        assert content.startswith("# MNM reproduction report")
        assert "## fig13" in content
        out = capsys.readouterr().out
        assert "report written" in out
