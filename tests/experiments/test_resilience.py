"""Failure-policy unit tests and chaos tests for the experiment engine.

The contract under test, from strongest to weakest guarantee:

1. a run that weathers injected faults (worker raise / hang / death)
   produces a report **byte-identical** to a fault-free run;
2. transient failures cost retries, fatal ones abort immediately with
   the failing task's identity in the message;
3. repeated pool collapses degrade to in-process serial execution
   instead of crashing the run.

Injected faults are keyed on ``(task key, attempt)`` and stop firing
after ``fail_attempts``, so every chaos schedule here converges.
"""

import dataclasses
import json

import pytest

from repro import telemetry
from repro.experiments.base import ExperimentSettings
from repro.experiments.executor import execute_tasks, plan_experiments
from repro.experiments.passcache import configure_pass_cache, get_pass_cache
from repro.experiments.report import generate_report
from repro.experiments.resilience import (
    ExecutionPolicy,
    RetryPolicy,
    TaskExecutionError,
    TransientTaskError,
    is_retryable,
    policy_from_cli,
)
from repro.testing.faults import InjectedFault

TINY = ExperimentSettings(num_instructions=4000, warmup_fraction=0.25,
                          workloads=("twolf",))
TWO_WORKLOADS = dataclasses.replace(TINY, workloads=("twolf", "gcc"))

#: Zero backoff so retry-heavy tests don't sleep.
FAST = ExecutionPolicy(retry=RetryPolicy(max_attempts=3, backoff_base=0.0))


def chaos(settings: ExperimentSettings, **spec) -> ExperimentSettings:
    """The same settings with a fault-injection rule attached."""
    return dataclasses.replace(settings, fault_spec=json.dumps(spec))


@pytest.fixture(autouse=True)
def fresh_state():
    configure_pass_cache()
    yield
    configure_pass_cache()
    telemetry.reset()


class TestRetryPolicy:
    def test_delay_is_deterministic_across_instances(self):
        policy = RetryPolicy(seed=11)
        again = RetryPolicy(seed=11)
        delays = [policy.delay("task-key", attempt) for attempt in (1, 2, 3)]
        assert delays == [again.delay("task-key", a) for a in (1, 2, 3)]

    def test_backoff_grows_exponentially_with_bounded_jitter(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                             jitter=0.5, backoff_cap=1000.0)
        for attempt in (1, 2, 3, 4):
            base = 0.1 * (2.0 ** (attempt - 1))
            assert base <= policy.delay("key", attempt) <= base * 1.5

    def test_cap_bounds_every_delay(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_factor=10.0,
                             backoff_cap=2.0)
        assert policy.delay("key", 9) == 2.0

    def test_different_seeds_jitter_differently(self):
        assert (RetryPolicy(seed=1).delay("key", 1)
                != RetryPolicy(seed=2).delay("key", 1))

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-1.0)
        with pytest.raises(ValueError):
            ExecutionPolicy(task_timeout=0)
        with pytest.raises(ValueError):
            ExecutionPolicy(max_pool_failures=0)

    def test_policy_from_cli_counts_retries_beyond_the_first_try(self):
        policy = policy_from_cli(retries=0, task_timeout=30.0, seed=5)
        assert policy.retry.max_attempts == 1
        assert policy.retry.seed == 5
        assert policy.task_timeout == 30.0
        with pytest.raises(ValueError):
            policy_from_cli(retries=-1, task_timeout=None)


class TestClassification:
    def test_transient_failures_are_retryable(self):
        from concurrent.futures.process import BrokenProcessPool

        for exc in (BrokenProcessPool("pool died"), TimeoutError(),
                    TransientTaskError(), InjectedFault(), OSError(),
                    EOFError(), MemoryError(), ConnectionResetError()):
            assert is_retryable(exc), exc

    def test_task_definition_bugs_are_fatal(self):
        for exc in (ValueError("bad config"), TypeError(), KeyError("x"),
                    ZeroDivisionError()):
            assert not is_retryable(exc), exc

    def test_user_interruption_is_never_swallowed(self):
        assert not is_retryable(KeyboardInterrupt())
        assert not is_retryable(SystemExit(1))

    def test_task_execution_error_names_the_task(self):
        error = TaskExecutionError(
            "fig10: reference pass workload=twolf hierarchy=paper-5level",
            attempts=3, cause=TimeoutError("hung"))
        message = str(error)
        assert "fig10" in message
        assert "twolf" in message
        assert "3 attempts" in message
        assert "TimeoutError" in message


class _FlakyTask:
    """Minimal in-process Task stand-in: fails N times, then succeeds."""

    def __init__(self, failures, exc_factory):
        self.settings = TINY
        self.calls = 0
        self._failures = failures
        self._exc_factory = exc_factory

    def cache_key(self):
        return "test|flaky-task"

    def describe(self):
        return "test: flaky task workload=twolf"

    def execute(self):
        self.calls += 1
        if self.calls <= self._failures:
            raise self._exc_factory()
        return object()


class TestSerialRetries:
    def test_transient_failures_are_retried_until_success(self):
        registry = telemetry.enable_metrics()
        task = _FlakyTask(failures=2, exc_factory=TransientTaskError)
        assert execute_tasks([task], jobs=1, policy=FAST) == 1
        assert task.calls == 3
        counters = registry.snapshot()["counters"]
        assert counters["executor.tasks.retried"] == 2
        assert counters["executor.tasks.recovered"] == 1
        assert counters["executor.tasks.completed"] == 1

    def test_exhausted_retries_carry_the_task_identity(self):
        registry = telemetry.enable_metrics()
        task = _FlakyTask(failures=99, exc_factory=TransientTaskError)
        with pytest.raises(TaskExecutionError) as excinfo:
            execute_tasks([task], jobs=1, policy=FAST)
        assert excinfo.value.attempts == FAST.retry.max_attempts
        assert "flaky task workload=twolf" in str(excinfo.value)
        assert registry.snapshot()["counters"]["executor.tasks.failed"] == 1

    def test_serial_deadline_overrun_is_counted_not_enforced(self):
        """--task-timeout on the serial path: surfaced, never killing.

        In-process execution cannot preempt a running task, so the
        timeout degrades to a best-effort deadline check: the task still
        completes and counts, and the overrun lands in
        ``executor.serial.deadline_exceeded``.
        """
        registry = telemetry.enable_metrics()
        task = _FlakyTask(failures=0, exc_factory=TransientTaskError)
        policy = ExecutionPolicy(retry=FAST.retry, task_timeout=1e-6)
        assert execute_tasks([task], jobs=1, policy=policy) == 1
        counters = registry.snapshot()["counters"]
        assert counters["executor.serial.deadline_exceeded"] == 1
        assert counters["executor.tasks.completed"] == 1  # still completed

    def test_fatal_errors_abort_without_retrying(self):
        task = _FlakyTask(failures=99,
                          exc_factory=lambda: ValueError("bad config"))
        with pytest.raises(TaskExecutionError) as excinfo:
            execute_tasks([task], jobs=1, policy=FAST)
        assert task.calls == 1
        assert excinfo.value.attempts == 1
        assert "ValueError" in str(excinfo.value)

    def test_injected_raise_fault_on_a_real_task(self):
        registry = telemetry.enable_metrics()
        settings = chaos(TINY, site="task", kind="raise", fail_attempts=2)
        tasks = plan_experiments(["fig10"], settings)
        assert execute_tasks(tasks, jobs=1, policy=FAST) == len(tasks)
        counters = registry.snapshot()["counters"]
        assert counters["executor.tasks.retried"] == 2 * len(tasks)
        assert counters["executor.tasks.recovered"] == len(tasks)


class TestSpanAttribution:
    """Retried tasks must stay distinguishable in the span ledger."""

    def test_serial_retry_recorded_with_final_attempt(self):
        spans = telemetry.enable_spans()
        task = _FlakyTask(failures=2, exc_factory=TransientTaskError)
        assert execute_tasks([task], jobs=1, policy=FAST) == 1
        snapshot = spans.snapshot()
        ledger = snapshot["tasks"]
        assert len(ledger) == 1
        assert ledger[0]["attempt"] == 3        # succeeded on third try
        assert ledger[0]["worker"] == "serial"
        retries = [e for e in snapshot["events"]
                   if e["name"] == "executor.retry"]
        assert [e["attrs"]["attempt"] for e in retries] == [1, 2]
        assert all(e["attrs"]["task"] == ledger[0]["task_id"]
                   for e in retries)

    def test_injected_parallel_fault_attributed_in_ledger(self):
        spans = telemetry.enable_spans()
        settings = chaos(TWO_WORKLOADS, site="task", kind="raise",
                         fail_attempts=1)
        tasks = plan_experiments(["fig10"], settings)
        assert execute_tasks(tasks, jobs=2, policy=FAST) == len(tasks)
        ledger = spans.snapshot()["tasks"]
        assert len(ledger) == len(tasks)
        assert all(entry["attempt"] == 2 for entry in ledger)
        assert all(entry["worker"] == "pool" for entry in ledger)
        # Each task's worker-side span came back tagged with its id.
        remote = {span["attrs"]["task"]
                  for span in spans.snapshot()["spans"]
                  if span.get("remote")}
        assert remote == {entry["task_id"] for entry in ledger}


class TestChaosParallel:
    """Injected worker faults vs. the pool: the report must not notice."""

    def test_worker_raise_report_is_byte_identical(self):
        clean = generate_report(TINY, experiments=["fig10"], jobs=1)
        configure_pass_cache()
        registry = telemetry.enable_metrics()
        settings = chaos(TINY, site="task", kind="raise", fail_attempts=1)
        chaotic = generate_report(settings, experiments=["fig10"],
                                  jobs=2, policy=FAST)
        assert chaotic == clean
        counters = registry.snapshot()["counters"]
        assert counters["executor.tasks.retried"] >= 1
        assert counters["executor.tasks.recovered"] >= 1

    def test_worker_death_breaks_the_pool_but_not_the_run(self):
        registry = telemetry.enable_metrics()
        settings = chaos(TWO_WORKLOADS, site="task", kind="exit",
                         fail_attempts=1)
        tasks = plan_experiments(["fig10"], settings)
        assert len(tasks) >= 2  # keeps the run on the pool path
        assert execute_tasks(tasks, jobs=2, policy=FAST) == len(tasks)
        counters = registry.snapshot()["counters"]
        assert counters["executor.pool.broken"] >= 1
        assert counters["executor.pool.rebuilds"] >= 1
        assert counters["executor.tasks.completed"] == len(tasks)
        cache = get_pass_cache()
        assert all(cache.lookup(task.cache_key()) is not None
                   for task in tasks)

    def test_hung_worker_is_timed_out_and_retried(self):
        registry = telemetry.enable_metrics()
        settings = chaos(TWO_WORKLOADS, site="task", kind="hang",
                         fail_attempts=1, hang_seconds=30.0)
        tasks = plan_experiments(["fig10"], settings)
        assert len(tasks) >= 2
        policy = ExecutionPolicy(
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
            task_timeout=5.0)
        assert execute_tasks(tasks, jobs=2, policy=policy) == len(tasks)
        counters = registry.snapshot()["counters"]
        assert counters["executor.tasks.timeout"] >= 1
        assert counters["executor.pool.rebuilds"] >= 1
        assert counters["executor.tasks.completed"] == len(tasks)

    def test_repeated_pool_collapse_degrades_to_serial(self):
        registry = telemetry.enable_metrics()
        settings = chaos(TWO_WORKLOADS, site="task", kind="exit",
                         fail_attempts=1)
        tasks = plan_experiments(["fig10"], settings)
        assert len(tasks) >= 2
        policy = ExecutionPolicy(
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
            max_pool_failures=1)
        assert execute_tasks(tasks, jobs=2, policy=policy) == len(tasks)
        counters = registry.snapshot()["counters"]
        assert counters["executor.serial_fallback"] == 1
        assert counters["executor.tasks.completed"] == len(tasks)
