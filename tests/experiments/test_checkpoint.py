"""Tests for the run journal and the ``--resume`` contract.

The property that matters: *at every instant* the run directory is a
valid resume point.  Entries become durable the moment a task finishes
(flush + fsync), a torn trailing write costs one recomputed task, and a
resumed run produces the same report as an uninterrupted one.
"""

import dataclasses
import json
import os

import pytest

from repro import telemetry
from repro.experiments.base import ExperimentSettings
from repro.experiments.checkpoint import (
    JOURNAL_MAGIC,
    JOURNAL_NAME,
    JOURNAL_SCHEMA,
    RunJournal,
)
from repro.experiments.executor import execute_tasks, plan_experiments
from repro.experiments.passcache import configure_pass_cache
from repro.experiments.report import generate_report
from repro.experiments.resilience import ExecutionPolicy, RetryPolicy

TINY = ExperimentSettings(num_instructions=4000, warmup_fraction=0.25,
                          workloads=("twolf",))
FAST = ExecutionPolicy(retry=RetryPolicy(max_attempts=3, backoff_base=0.0))


@pytest.fixture(autouse=True)
def fresh_state():
    configure_pass_cache()
    yield
    configure_pass_cache()
    telemetry.reset()


class TestJournalFile:
    def test_roundtrip(self, tmp_path):
        run_dir = str(tmp_path / "run")
        with RunJournal.open(run_dir) as journal:
            assert len(journal) == 0
            journal.record("key-a", "fig10: pass a", elapsed=1.234)
            journal.record("key-b", "fig10: pass b")
            journal.record("key-a", "fig10: pass a")  # idempotent
            assert len(journal) == 2
            assert journal.is_complete("key-a")
            assert not journal.is_complete("key-c")

        reopened = RunJournal.open(run_dir)
        assert len(reopened) == 2
        assert reopened.is_complete("key-a")
        entries = {entry["task"]: entry for entry in reopened.entries()}
        assert entries["fig10: pass a"]["elapsed_s"] == 1.234
        assert "elapsed_s" not in entries["fig10: pass b"]

    def test_header_names_the_schema(self, tmp_path):
        run_dir = str(tmp_path / "run")
        with RunJournal.open(run_dir) as journal:
            journal.record("key-a")
        first_line = open(os.path.join(run_dir, JOURNAL_NAME)).readline()
        header = json.loads(first_line)
        assert header == {"magic": JOURNAL_MAGIC, "schema": JOURNAL_SCHEMA}

    def test_torn_trailing_line_costs_one_recompute(self, tmp_path):
        """A crash mid-append must not poison the journal."""
        run_dir = str(tmp_path / "run")
        with RunJournal.open(run_dir) as journal:
            journal.record("key-a", "pass a")
            journal.record("key-b", "pass b")
        path = os.path.join(run_dir, JOURNAL_NAME)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key_sha": "deadbeef", "task": "torn wr')
        reopened = RunJournal.open(run_dir)
        assert len(reopened) == 2
        assert reopened.is_complete("key-a")

    def test_unknown_schema_reads_as_empty_and_is_set_aside(self, tmp_path):
        """Entries of unknown shape are recomputed, never misread."""
        run_dir = str(tmp_path / "run")
        os.makedirs(run_dir)
        path = os.path.join(run_dir, JOURNAL_NAME)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"magic": JOURNAL_MAGIC,
                                     "schema": JOURNAL_SCHEMA + 1}) + "\n")
            handle.write(json.dumps({"key_sha": "abc"}) + "\n")
        journal = RunJournal.open(run_dir)
        assert len(journal) == 0
        assert os.path.exists(path + ".stale")

    def test_garbage_file_reads_as_empty(self, tmp_path):
        run_dir = str(tmp_path / "run")
        os.makedirs(run_dir)
        with open(os.path.join(run_dir, JOURNAL_NAME), "w") as handle:
            handle.write("not a journal\n")
        assert len(RunJournal.open(run_dir)) == 0

    def test_non_dict_entries_are_skipped(self, tmp_path):
        run_dir = str(tmp_path / "run")
        with RunJournal.open(run_dir) as journal:
            journal.record("key-a")
        path = os.path.join(run_dir, JOURNAL_NAME)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('"just a string"\n[1, 2]\n')
        assert len(RunJournal.open(run_dir)) == 1

    def test_truncation_at_every_byte_offset_never_misreads(self, tmp_path):
        """The crash-consistency sweep: cut the file at *every* offset.

        Whatever prefix a crash leaves on disk, loading must (a) not
        raise, (b) recover exactly the entries whose full line survived,
        and (c) never hallucinate a completion that is not byte-intact.
        The non-ASCII task description puts multibyte UTF-8 sequences in
        the file, so some offsets cut *inside* a character.
        """
        run_dir = str(tmp_path / "run")
        with RunJournal.open(run_dir) as journal:
            journal.record("key-a", "fig02: tôlf pass ①")
            journal.record("key-b", "fig02: pass b")
            journal.record("key-c", "fig02: pass c")
        path = os.path.join(run_dir, JOURNAL_NAME)
        with open(path, "rb") as handle:
            data = handle.read()
        # key digest -> byte offset at which its line is fully on disk.
        durable_at = {}
        offset = data.index(b"\n") + 1  # header line
        for line in data[offset:].split(b"\n")[:-1]:
            offset += len(line) + 1
            digest = json.loads(line.decode("utf-8"))["key_sha"]
            durable_at[digest] = offset
        assert len(durable_at) == 3
        for cut in range(len(data) + 1):
            with open(path, "wb") as handle:
                handle.write(data[:cut])
            journal = RunJournal.open(run_dir)
            # A line is durable once its JSON is byte-complete; the
            # trailing newline itself (offset - 1 vs offset) adds no
            # information, so a cut right before it still recovers.
            expected = {digest for digest, offset in durable_at.items()
                        if offset - 1 <= cut}
            recovered = {entry["key_sha"] for entry in journal.entries()}
            assert recovered == expected, f"mismatch at byte offset {cut}"

    def test_torn_tail_bumps_the_torn_counter(self, tmp_path):
        run_dir = str(tmp_path / "run")
        with RunJournal.open(run_dir) as journal:
            journal.record("key-a", "pass a")
        path = os.path.join(run_dir, JOURNAL_NAME)
        with open(path, "ab") as handle:
            handle.write(b'{"key_sha": "feedface", "task": "torn \xc3')
        registry = telemetry.enable_metrics()
        journal = RunJournal.open(run_dir)
        assert len(journal) == 1
        assert registry.counter("checkpoint.journal.torn").value == 1

    def test_injected_torn_append_recomputes_on_resume(self, tmp_path):
        """The journal-write chaos site models a crash mid-append."""
        from repro.testing.faults import configure_faults

        run_dir = str(tmp_path / "run")
        configure_faults(json.dumps(
            {"site": "journal-write", "kind": "torn", "fail_attempts": 1}))
        try:
            with RunJournal.open(run_dir) as journal:
                journal.record("key-a", "pass a")
                # The crashed run still believes the task is complete...
                assert journal.is_complete("key-a")
        finally:
            configure_faults(None)
        registry = telemetry.enable_metrics()
        # ...but a resume skips the torn line and recomputes it.
        reopened = RunJournal.open(run_dir)
        assert not reopened.is_complete("key-a")
        assert registry.counter("checkpoint.journal.torn").value == 1


class TestResume:
    def _journaled_run(self, run_dir, settings=TINY, policy=FAST):
        """One journaled execution round against ``run_dir``."""
        configure_pass_cache(cache_dir=RunJournal.passes_dir(run_dir))
        journal = RunJournal.open(run_dir)
        tasks = plan_experiments(["fig10"], settings)
        try:
            computed = execute_tasks(tasks, jobs=1, policy=policy,
                                     journal=journal)
        finally:
            journal.close()
        return tasks, computed

    def test_completed_tasks_are_skipped_on_resume(self, tmp_path):
        run_dir = str(tmp_path / "run")
        tasks, computed = self._journaled_run(run_dir)
        assert computed == len(tasks)
        assert len(RunJournal.open(run_dir)) == len(tasks)

        telemetry.reset()
        registry = telemetry.enable_metrics()
        _, recomputed = self._journaled_run(run_dir)
        assert recomputed == 0
        counters = registry.snapshot()["counters"]
        assert counters["executor.tasks.resumed"] == len(tasks)

    def test_cached_but_unjournaled_work_is_backfilled(self, tmp_path):
        """A shared disk cache seeded outside the journal still ends up
        manifest-complete, so the journal never under-reports a run."""
        run_dir = str(tmp_path / "run")
        configure_pass_cache(cache_dir=RunJournal.passes_dir(run_dir))
        tasks = plan_experiments(["fig10"], TINY)
        execute_tasks(tasks, jobs=1, policy=FAST)  # no journal yet

        journal = RunJournal.open(run_dir)
        try:
            assert execute_tasks(tasks, jobs=1, policy=FAST,
                                 journal=journal) == 0
            assert len(journal) == len(tasks)
        finally:
            journal.close()

    def test_interrupted_run_resumes_to_an_identical_report(self, tmp_path):
        clean = generate_report(TINY, experiments=["fig10"], jobs=1)
        configure_pass_cache()

        run_dir = str(tmp_path / "run")
        interrupted = dataclasses.replace(
            TINY,
            fault_spec=json.dumps({"site": "task", "kind": "interrupt",
                                   "fail_attempts": 1}))
        with pytest.raises(KeyboardInterrupt):
            self._journaled_run(run_dir, settings=interrupted)

        # The journal survived the interruption as a loadable manifest...
        journal = RunJournal.open(run_dir)
        completed_before = len(journal)
        journal.close()

        # ...and the resumed, fault-free run completes with the same bytes.
        configure_pass_cache(cache_dir=RunJournal.passes_dir(run_dir))
        journal = RunJournal.open(run_dir)
        try:
            resumed = generate_report(TINY, experiments=["fig10"],
                                      jobs=1, policy=FAST, journal=journal)
            assert resumed == clean
            assert len(journal) >= max(completed_before, 1)
        finally:
            journal.close()
