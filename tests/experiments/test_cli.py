"""Tests for the command-line harness."""

import json
import os

import pytest

from repro.experiments.cli import (
    EXIT_BAD_VALUE,
    EXIT_UNKNOWN_EXPERIMENT,
    main,
)


class TestList:
    def test_list_prints_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in ("fig02", "fig15", "table2"):
            assert experiment_id in out
        assert "[heavy]" in out


class TestRun:
    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "RMNM worked example" in out
        assert "YES (matches Table 1)" in out

    def test_run_with_settings(self, capsys):
        code = main(["run", "fig10", "--instructions", "4000",
                     "--workloads", "twolf", "--warmup-fraction", "0.25"])
        assert code == 0
        out = capsys.readouterr().out
        assert "RMNM coverage" in out
        assert "twolf" in out

    def test_rejects_unknown_experiment(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "fig99"])
        assert excinfo.value.code == EXIT_UNKNOWN_EXPERIMENT
        err = capsys.readouterr().err
        assert "fig99" in err
        assert "repro-mnm list" in err

    def test_output_file(self, tmp_path, capsys):
        path = tmp_path / "out.txt"
        main(["run", "table3", "--output", str(path)])
        capsys.readouterr()
        assert "HMNM4" in path.read_text()


SMALL = ["--instructions", "4000", "--workloads", "twolf",
         "--warmup-fraction", "0.25"]


class TestExitCodes:
    """Known user errors map to distinct codes with a one-line message."""

    def _expect(self, argv, code, fragment, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == code
        assert fragment in capsys.readouterr().err

    def test_negative_retries(self, capsys):
        self._expect(["run", "fig10", *SMALL, "--retries", "-1"],
                     EXIT_BAD_VALUE, "--retries", capsys)

    def test_non_positive_task_timeout(self, capsys):
        self._expect(["run", "fig10", *SMALL, "--task-timeout", "0"],
                     EXIT_BAD_VALUE, "--task-timeout", capsys)

    def test_negative_jobs(self, capsys):
        self._expect(["run", "fig10", *SMALL, "--jobs", "-2"],
                     EXIT_BAD_VALUE, "--jobs", capsys)

    def test_resume_conflicts_with_cache_dir(self, tmp_path, capsys):
        self._expect(["run", "fig10", *SMALL,
                      "--resume", str(tmp_path / "run"),
                      "--cache-dir", str(tmp_path / "cache")],
                     EXIT_BAD_VALUE, "--resume and --cache-dir", capsys)

    def test_resume_conflicts_with_no_cache(self, tmp_path, capsys):
        self._expect(["run", "fig10", *SMALL,
                      "--resume", str(tmp_path / "run"), "--no-cache"],
                     EXIT_BAD_VALUE, "--resume and --no-cache", capsys)


class TestResume:
    def test_journaled_run_skips_completed_passes(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        metrics = tmp_path / "metrics.json"
        assert main(["run", "fig10", *SMALL, "--jobs", "1",
                     "--resume", str(run_dir)]) == 0
        journal = run_dir / "journal.jsonl"
        assert journal.exists()
        entries = journal.read_text().splitlines()
        assert len(entries) >= 2  # header + at least one completed task
        assert (run_dir / "passes").is_dir()
        assert os.listdir(run_dir / "passes")

        capsys.readouterr()
        assert main(["run", "fig10", *SMALL, "--jobs", "1",
                     "--resume", str(run_dir),
                     "--metrics-out", str(metrics)]) == 0
        counters = json.loads(metrics.read_text())["counters"]
        assert counters["executor.tasks.resumed"] == len(entries) - 1
        assert "executor.tasks.completed" not in counters


class TestAll:
    def test_all_skip_heavy_small(self, capsys):
        code = main(["all", "--skip-heavy", "--instructions", "4000",
                     "--workloads", "twolf", "--warmup-fraction", "0.25"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig02" in out
        assert "fig14" in out
        assert "fig15" not in out


class TestMulticoreCommand:
    ARGS = ["multicore", "--instructions", "3000", "--workloads", "twolf",
            "--warmup-fraction", "0.25", "--cores", "2",
            "--sharing", "private,shared", "--l2-policy", "inclusive",
            "--designs", "TMNM_10x1,PERFECT"]

    def test_contention_report(self, capsys):
        assert main(list(self.ARGS)) == 0
        out = capsys.readouterr().out
        assert "multi-core contention" in out
        assert "private" in out and "shared" in out
        assert "violations" in out

    def test_json_output(self, tmp_path, capsys):
        path = tmp_path / "mc.json"
        assert main([*self.ARGS, "--json", str(path)]) == 0
        capsys.readouterr()
        payload = json.loads(path.read_text())
        assert payload["experiment_id"] == "multicore"
        # every row's violations column must read 0 (soundness contract)
        index = payload["headers"].index("violations")
        assert all(row[index] == 0 for row in payload["rows"])

    def _expect(self, argv, fragment, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == EXIT_BAD_VALUE
        assert fragment in capsys.readouterr().err

    def test_rejects_zero_cores(self, capsys):
        self._expect(["multicore", "--cores", "0"], "--cores", capsys)

    def test_rejects_unknown_sharing(self, capsys):
        self._expect(["multicore", "--sharing", "split"], "--sharing",
                     capsys)

    def test_rejects_unknown_policy(self, capsys):
        self._expect(["multicore", "--l2-policy", "victim"], "--l2-policy",
                     capsys)

    def test_rejects_unparsable_design(self, capsys):
        self._expect(["multicore", "--designs", "NOT_A_DESIGN"],
                     "--designs", capsys)

    def test_rejects_negative_schedule_seed(self, capsys):
        self._expect(["multicore", "--schedule-seed", "-3"],
                     "--schedule-seed", capsys)
