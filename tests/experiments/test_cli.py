"""Tests for the command-line harness."""

import pytest

from repro.experiments.cli import main


class TestList:
    def test_list_prints_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in ("fig02", "fig15", "table2"):
            assert experiment_id in out
        assert "[heavy]" in out


class TestRun:
    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "RMNM worked example" in out
        assert "YES (matches Table 1)" in out

    def test_run_with_settings(self, capsys):
        code = main(["run", "fig10", "--instructions", "4000",
                     "--workloads", "twolf", "--warmup-fraction", "0.25"])
        assert code == 0
        out = capsys.readouterr().out
        assert "RMNM coverage" in out
        assert "twolf" in out

    def test_rejects_unknown_experiment(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_output_file(self, tmp_path, capsys):
        path = tmp_path / "out.txt"
        main(["run", "table3", "--output", str(path)])
        capsys.readouterr()
        assert "HMNM4" in path.read_text()


class TestAll:
    def test_all_skip_heavy_small(self, capsys):
        code = main(["all", "--skip-heavy", "--instructions", "4000",
                     "--workloads", "twolf", "--warmup-fraction", "0.25"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig02" in out
        assert "fig14" in out
        assert "fig15" not in out
