"""SIGTERM parity regression tests (subprocess level).

Fleet schedulers (systemd, Kubernetes, Slurm) stop processes with
SIGTERM, not Ctrl-C.  The CLI must treat both identically: flush the
journal, write a ``status: interrupted`` manifest, exit 130 — for the
controller and for ``repro-mnm worker`` alike.  These tests drive real
subprocesses because signal disposition is process-global state that
in-process tests cannot exercise honestly.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.experiments.backends.queue import WorkQueue
from repro.experiments.cli import (
    EXIT_INTERRUPTED,
    _install_sigterm_handler,
    _restore_sigterm_handler,
)

SMALL = ["--instructions", "4000", "--workloads", "twolf",
         "--warmup-fraction", "0.25"]

#: A task-site hang long enough that SIGTERM always lands mid-task.
HANG_SPEC = json.dumps({"site": "task", "kind": "hang",
                        "hang_seconds": 300.0})


def spawn(args, env_extra=None):
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.update(env_extra or {})
    return subprocess.Popen(
        [sys.executable, "-m", "repro.experiments", *args],
        env=env, stdin=subprocess.DEVNULL,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE)


def wait_for(predicate, timeout=60.0, interval=0.1):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestControllerSigterm:
    def test_sigterm_mid_run_exits_130_with_interrupted_manifest(
            self, tmp_path):
        run_dir = str(tmp_path / "run")
        proc = spawn(["report", "--skip-heavy", *SMALL,
                      "--run-dir", run_dir],
                     env_extra={"REPRO_FAULTS": HANG_SPEC})
        try:
            # The run directory appears early (journal setup); the first
            # planned task then hangs for 300 s, so after a grace period
            # SIGTERM reliably lands mid-task.
            assert wait_for(lambda: os.path.isdir(run_dir)), \
                proc.communicate(timeout=5)
            time.sleep(2.0)
            proc.send_signal(signal.SIGTERM)
            _, stderr = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == EXIT_INTERRUPTED
        assert b"interrupted" in stderr
        manifest_path = os.path.join(run_dir, "manifest.json")
        assert os.path.exists(manifest_path)
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        assert manifest["status"] == "interrupted"


class TestWorkerSigterm:
    def test_sigterm_while_polling_exits_130(self, tmp_path):
        queue_dir = str(tmp_path / "queue")
        WorkQueue.create(queue_dir)
        proc = spawn(["worker", "--queue", queue_dir])
        try:
            time.sleep(2.0)  # let it reach the polling loop
            assert proc.poll() is None, proc.communicate(timeout=5)
            proc.send_signal(signal.SIGTERM)
            _, stderr = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == EXIT_INTERRUPTED
        assert b"worker interrupted" in stderr


class TestHandlerPlumbing:
    def test_sigterm_converts_to_keyboard_interrupt(self):
        previous = _install_sigterm_handler()
        try:
            with pytest.raises(KeyboardInterrupt):
                os.kill(os.getpid(), signal.SIGTERM)
                # Python delivers the signal at the next bytecode
                # boundary; this loop is that boundary.
                for _ in range(1000):
                    time.sleep(0.001)
        finally:
            _restore_sigterm_handler(previous)

    def test_restore_reinstates_the_previous_disposition(self):
        before = signal.getsignal(signal.SIGTERM)
        previous = _install_sigterm_handler()
        assert signal.getsignal(signal.SIGTERM) is not before
        _restore_sigterm_handler(previous)
        assert signal.getsignal(signal.SIGTERM) == before
