"""Tests for the parallel experiment executor.

The determinism contract under test: the same settings produce the same
report — byte for byte, and telemetry-counter for telemetry-counter —
whatever ``jobs`` is set to.
"""

import pytest

from repro import telemetry
from repro.experiments.base import ExperimentSettings
from repro.experiments.executor import (
    default_jobs,
    execute_tasks,
    plan_experiments,
    prefetch_experiments,
)
from repro.experiments.passcache import configure_pass_cache, get_pass_cache
from repro.experiments.report import generate_report

TINY = ExperimentSettings(num_instructions=4000, warmup_fraction=0.25,
                          workloads=("twolf",))
EXPERIMENTS = ["fig02", "fig10", "fig15"]


@pytest.fixture(autouse=True)
def fresh_cache():
    """Each test starts with an empty memory-only cache."""
    configure_pass_cache()
    yield
    configure_pass_cache()
    telemetry.reset()


def test_default_jobs_positive():
    assert default_jobs() >= 1


def test_default_jobs_respects_cpu_affinity(monkeypatch):
    """A process pinned to one CPU must not get a multi-worker default.

    ``os.cpu_count()`` sees the whole machine; the affinity mask is what
    the scheduler will actually give us (containers, taskset, cgroups).
    """
    import repro.experiments.executor as executor_module

    monkeypatch.setattr(executor_module.os, "cpu_count", lambda: 8)
    monkeypatch.setattr(executor_module.os, "sched_getaffinity",
                        lambda pid: {0}, raising=False)
    assert default_jobs() == 1


def test_default_jobs_falls_back_to_cpu_count(monkeypatch):
    """Platforms without sched_getaffinity still get one job per CPU."""
    import repro.experiments.executor as executor_module

    monkeypatch.setattr(executor_module.os, "cpu_count", lambda: 6)
    monkeypatch.delattr(executor_module.os, "sched_getaffinity",
                        raising=False)
    assert default_jobs() == 6


def test_single_job_never_touches_the_process_pool(monkeypatch):
    """``--jobs 0`` resolving to 1 must run in-process, not via a pool.

    On a 1-CPU host the pool adds pure overhead (spawn + pickle + IPC)
    for zero parallelism; the executor is required to fall through to
    the serial path.  A pool constructor that explodes proves it.
    """
    import repro.experiments.backends.pool as pool_module
    import repro.experiments.executor as executor_module

    def _no_pool(*_args, **_kwargs):
        raise AssertionError("jobs == 1 must not create a process pool")

    monkeypatch.setattr(executor_module, "ProcessPoolExecutor", _no_pool)
    monkeypatch.setattr(pool_module, "ProcessPoolExecutor", _no_pool)
    tasks = plan_experiments(["fig02"], TINY)
    assert execute_tasks(tasks, jobs=1) == len(
        {task.cache_key() for task in tasks})


def test_plan_covers_pass_and_core_tasks():
    tasks = plan_experiments(EXPERIMENTS, TINY)
    kinds = {type(task).__name__ for task in tasks}
    assert kinds == {"PassTask", "CoreTask"}


def test_serial_and_parallel_reports_are_byte_identical():
    serial = generate_report(TINY, experiments=EXPERIMENTS, jobs=1)
    configure_pass_cache()
    parallel = generate_report(TINY, experiments=EXPERIMENTS, jobs=2)
    assert parallel == serial


def test_prefetch_seeds_the_cache():
    tasks = plan_experiments(EXPERIMENTS, TINY)
    computed = prefetch_experiments(EXPERIMENTS, TINY, jobs=2)
    unique = {task.cache_key() for task in tasks}
    assert computed == len(unique)
    # Every planned task is now a memory hit...
    cache = get_pass_cache()
    assert all(cache.lookup(task.cache_key()) is not None for task in tasks)
    # ...so a second prefetch computes nothing.
    assert prefetch_experiments(EXPERIMENTS, TINY, jobs=2) == 0


def test_shared_passes_deduplicated():
    """fig02 and fig03 plan identical baseline passes — run once."""
    fig02 = plan_experiments(["fig02"], TINY)
    both = plan_experiments(["fig02", "fig03"], TINY)
    assert len(both) == 2 * len(fig02)
    assert execute_tasks(both, jobs=2) == len(fig02)


def test_disabled_cache_skips_prefetch():
    configure_pass_cache(enabled=False)
    assert prefetch_experiments(EXPERIMENTS, TINY, jobs=2) == 0


def _simulation_counters(snapshot):
    """The snapshot minus the executor's own health ledger.

    ``executor.*`` counters describe the execution *strategy* (how many
    tasks the pool computed, retried, resumed) and legitimately differ
    between ``jobs`` values; every simulation-derived instrument must
    still match exactly.
    """
    return {
        "counters": {name: value
                     for name, value in snapshot["counters"].items()
                     if not name.startswith("executor.")},
        "gauges": snapshot["gauges"],
        "histograms": snapshot["histograms"],
    }


def test_parallel_telemetry_merge_matches_serial():
    registry = telemetry.enable_metrics()
    generate_report(TINY, experiments=EXPERIMENTS, jobs=1)
    serial_snapshot = registry.snapshot()
    telemetry.reset()

    configure_pass_cache()
    registry = telemetry.enable_metrics()
    generate_report(TINY, experiments=EXPERIMENTS, jobs=2)
    parallel_snapshot = registry.snapshot()

    assert (_simulation_counters(parallel_snapshot)
            == _simulation_counters(serial_snapshot))
    assert serial_snapshot["counters"]  # non-trivial: metrics were recorded
    # The parallel run's own ledger: every unique task computed, none lost.
    tasks = plan_experiments(EXPERIMENTS, TINY)
    unique = {task.cache_key() for task in tasks}
    assert (parallel_snapshot["counters"]["executor.tasks.completed"]
            == len(unique))


def test_parallel_profiling_merge_counts_all_work():
    profiler = telemetry.enable_profiling()
    prefetch_experiments(["fig10"], TINY, jobs=2)
    assert "reference_pass" in profiler.snapshot()
