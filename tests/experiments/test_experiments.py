"""Tests for the experiment harness (tiny settings for speed)."""

import pytest

from repro.experiments.base import (
    ExperimentSettings,
    clear_pass_cache,
    mean_row,
    reference_pass,
)
from repro.experiments.registry import (
    experiment_ids,
    get_experiment,
    run_experiment,
)
from repro.experiments.figures import DEPTH_PRESETS
from repro.cache.presets import paper_hierarchy_5level
from repro.core.presets import tmnm_design

TINY = ExperimentSettings(num_instructions=4000, warmup_fraction=0.25,
                          workloads=("twolf", "mcf"))


class TestSettings:
    def test_defaults_use_all_workloads(self):
        assert len(ExperimentSettings().workload_list) == 10

    def test_subset(self):
        assert TINY.workload_list == ("twolf", "mcf")

    def test_warmup_instructions(self):
        assert TINY.warmup_instructions == 1000

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentSettings(num_instructions=10)
        with pytest.raises(ValueError):
            ExperimentSettings(warmup_fraction=1.0)


class TestMeanRow:
    def test_averages_numeric_columns(self):
        rows = [["a", 1.0, 2], ["b", 3.0, 4]]
        assert mean_row("Mean", rows) == ["Mean", 2.0, 3.0]

    def test_non_numeric_yields_none(self):
        rows = [["a", "x"], ["b", "y"]]
        assert mean_row("Mean", rows) == ["Mean", None]

    def test_empty(self):
        assert mean_row("Mean", []) == ["Mean"]


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        ids = set(experiment_ids())
        paper_ids = {"fig02", "fig03", "table1", "table2", "table3",
                     "fig10", "fig11", "fig12", "fig13", "fig14",
                     "fig15", "fig16"}
        assert paper_ids <= ids
        # everything beyond the paper set is flagged as an extension
        for extra in ids - paper_ids:
            assert get_experiment(extra).extension

    def test_unknown_id(self):
        with pytest.raises(ValueError):
            get_experiment("fig99")

    def test_heavy_flags(self):
        assert get_experiment("fig15").heavy
        assert not get_experiment("fig10").heavy

    def test_pareto_extension(self):
        result = run_experiment("pareto", TINY)
        assert "WARNING" not in result.notes
        frontier = [row for row in result.rows if row[-1] == "yes"]
        assert frontier, "frontier must be non-empty"
        # frontier coverage strictly increases with storage
        coverages = [row[2] for row in frontier]
        assert coverages == sorted(coverages)


class TestPassCache:
    def test_reference_pass_memoised(self):
        clear_pass_cache()
        first = reference_pass("twolf", paper_hierarchy_5level(),
                               (tmnm_design(8, 1),), TINY)
        second = reference_pass("twolf", paper_hierarchy_5level(),
                                (tmnm_design(8, 1),), TINY)
        assert first is second

    def test_different_designs_not_shared(self):
        clear_pass_cache()
        a = reference_pass("twolf", paper_hierarchy_5level(),
                           (tmnm_design(8, 1),), TINY)
        b = reference_pass("twolf", paper_hierarchy_5level(), (), TINY)
        assert a is not b


class TestLightExperiments:
    def test_table1_scenario_validates(self):
        result = run_experiment("table1", TINY)
        assert "YES" in result.notes
        assert len(result.rows) == 5

    def test_table3_lists_hybrids(self):
        result = run_experiment("table3", TINY)
        assert [row[0] for row in result.rows] == ["HMNM1", "HMNM2",
                                                   "HMNM3", "HMNM4"]

    def test_fig02_fractions_in_range(self):
        result = run_experiment("fig02", TINY)
        assert result.headers == ["app"] + list(DEPTH_PRESETS)
        for row in result.rows:
            for value in row[1:]:
                assert 0.0 <= value <= 100.0

    def test_fig02_mean_row_present(self):
        result = run_experiment("fig02", TINY)
        assert result.rows[-1][0] == "Arith. Mean"
        assert len(result.rows) == len(TINY.workload_list) + 1

    def test_fig03_fractions_in_range(self):
        result = run_experiment("fig03", TINY)
        for row in result.rows:
            for value in row[1:]:
                assert 0.0 <= value <= 100.0

    def test_fig10_coverage_monotone_in_size(self):
        """Bigger RMNM caches can only record more replacements."""
        result = run_experiment("fig10", TINY)
        mean = result.rows[-1]
        assert mean[1] <= mean[-1] + 1e-9

    def test_fig13_no_violations_and_mean(self):
        result = run_experiment("fig13", TINY)
        assert "WARNING" not in result.notes
        for value in result.rows[-1][1:]:
            assert 0.0 <= value <= 100.0

    def test_fig14_hybrids_beat_components(self):
        clear_pass_cache()
        fig11 = run_experiment("fig11", TINY)
        fig14 = run_experiment("fig14", TINY)
        # HMNM4 mean coverage >= SMNM_20x3 mean coverage (it contains it)
        smnm_mean = fig11.rows[-1][4]
        hmnm_mean = fig14.rows[-1][4]
        assert hmnm_mean >= smnm_mean - 1e-9

    def test_result_helpers(self):
        result = run_experiment("fig10", TINY)
        assert result.column("app")[:2] == ["twolf", "mcf"]
        assert result.row_for("twolf")[0] == "twolf"
        with pytest.raises(KeyError):
            result.row_for("nosuch")
        rendered = result.render()
        assert "fig10" in rendered


class TestHeavyExperimentsSmoke:
    """One tiny heavy run each; full runs happen in the benchmarks."""

    SETTINGS = ExperimentSettings(num_instructions=3000,
                                  warmup_fraction=0.3,
                                  workloads=("twolf",))

    def test_table2_shape(self):
        result = run_experiment("table2", self.SETTINGS)
        assert result.headers[0] == "app"
        row = result.row_for("twolf")
        assert row[1] > 0  # cycles
        for value in row[4:]:
            assert 0.0 <= value <= 100.0

    def test_fig15_perfect_dominates(self):
        result = run_experiment("fig15", self.SETTINGS)
        row = result.row_for("twolf")
        perfect = row[-1]
        for value in row[1:-1]:
            assert value <= perfect + 1e-9

    def test_fig16_reports_all_designs(self):
        result = run_experiment("fig16", self.SETTINGS)
        assert len(result.headers) == 6


class TestMulticoreExtension:
    """Restricted-axis run of the contention sweep (full axes are heavy)."""

    SETTINGS = ExperimentSettings(num_instructions=3000,
                                  warmup_fraction=0.3,
                                  workloads=("twolf",))

    def test_contention_table_shape_and_soundness(self):
        from repro.experiments.extensions import run_multicore_contention

        result = run_multicore_contention(
            self.SETTINGS, core_counts=(1, 2), sharings=("private", "shared"),
            l2_policies=("inclusive",),
            design_names=("TMNM_10x1", "PERFECT"),
        )
        assert result.experiment_id == "multicore"
        assert result.headers[:4] == ["design", "cores", "sharing", "l2"]
        # 2 designs x 2 core counts x 2 sharings x 1 policy
        assert len(result.rows) == 8
        violations = result.column("violations")
        assert all(value == 0 for value in violations)
        # private banks at 2 cores pay storage over the shared bank
        kb = {(row[0], row[1], row[2]): row[6] for row in result.rows}
        assert kb[("TMNM_10x1", 2, "private")] == (
            2 * kb[("TMNM_10x1", 2, "shared")])
        assert "soundness" in result.notes

    def test_registry_entry_is_heavy_extension(self):
        entry = get_experiment("multicore")
        assert entry.heavy and entry.extension
        assert entry.planner is not None
