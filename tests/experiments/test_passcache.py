"""Tests for the content-addressed pass cache.

Pins the regression the cache layer was built to fix: the old cache keyed
on ``hierarchy_config.name`` / ``design.name`` only, so two
configurations sharing a name but differing structurally collided and
served stale results.
"""

import dataclasses
import pickle

import pytest

from repro.core.machine import MNMDesign
from repro.core.presets import hmnm_design, smnm_design, tmnm_design
from repro.experiments import passcache
from repro.experiments.base import ExperimentSettings, reference_pass
from repro.experiments.passcache import (
    PassCache,
    configure_pass_cache,
    core_key,
    fingerprint_design,
    fingerprint_hierarchy,
    pass_key,
)
from tests.conftest import small_hierarchy_config

TINY = ExperimentSettings(num_instructions=4000, warmup_fraction=0.25,
                          workloads=("twolf",))


@pytest.fixture(autouse=True)
def fresh_cache():
    """Each test gets an isolated memory-only cache."""
    configure_pass_cache()
    yield
    configure_pass_cache()


class TestKeyCollisions:
    def test_same_named_hierarchies_do_not_collide(self):
        """Regression: equal names, different geometry → different keys."""
        base = small_hierarchy_config()
        slower = dataclasses.replace(base, memory_latency=base.memory_latency * 2)
        assert base.name == slower.name
        assert (pass_key("twolf", base, (), TINY)
                != pass_key("twolf", slower, (), TINY))

    def test_same_named_hierarchies_get_fresh_results(self):
        """The slower hierarchy must not be served the faster one's pass."""
        base = small_hierarchy_config()
        slower = dataclasses.replace(base, memory_latency=base.memory_latency * 4)
        fast = reference_pass("twolf", base, (), TINY)
        slow = reference_pass("twolf", slower, (), TINY)
        assert slow.baseline_access_time > fast.baseline_access_time

    def test_same_named_designs_do_not_collide(self):
        """Regression: a ``perfect`` flag flip must change the key."""
        impostor = MNMDesign(name="PERFECT", perfect=False)
        real = MNMDesign(name="PERFECT", perfect=True)
        hierarchy = small_hierarchy_config()
        assert (pass_key("twolf", hierarchy, (impostor,), TINY)
                != pass_key("twolf", hierarchy, (real,), TINY))

    def test_same_named_designs_get_fresh_results(self):
        impostor = MNMDesign(name="PERFECT", perfect=False)
        real = MNMDesign(name="PERFECT", perfect=True)
        hierarchy = small_hierarchy_config()
        a = reference_pass("twolf", hierarchy, (impostor,), TINY)
        b = reference_pass("twolf", hierarchy, (real,), TINY)
        assert b.designs["PERFECT"].coverage.coverage == 1.0
        assert (a.designs["PERFECT"].coverage.coverage
                < b.designs["PERFECT"].coverage.coverage)

    def test_delay_and_placement_participate(self):
        design = tmnm_design(8, 1)
        tweaked = dataclasses.replace(design, delay=5)
        hierarchy = small_hierarchy_config()
        assert (pass_key("twolf", hierarchy, (design,), TINY)
                != pass_key("twolf", hierarchy, (tweaked,), TINY))

    def test_settings_participate(self):
        hierarchy = small_hierarchy_config()
        other = ExperimentSettings(num_instructions=5000,
                                   warmup_fraction=0.25,
                                   workloads=("twolf",))
        assert (pass_key("twolf", hierarchy, (), TINY)
                != pass_key("twolf", hierarchy, (), other))

    def test_core_and_pass_namespaces_distinct(self):
        hierarchy = small_hierarchy_config()
        assert (pass_key("twolf", hierarchy, (), TINY)
                != core_key("twolf", hierarchy, None, TINY))


class TestFingerprints:
    def test_factory_parameters_distinguish_designs(self):
        """Closure-captured parameters must show up in the fingerprint."""
        assert (fingerprint_design(smnm_design(10, 2))
                != fingerprint_design(smnm_design(13, 2)))

    def test_independent_builds_fingerprint_identically(self):
        """The parent/worker contract: rebuilding a design from presets
        yields the same key on both sides of a process boundary."""
        assert (fingerprint_design(hmnm_design(4))
                == fingerprint_design(hmnm_design(4)))
        assert (fingerprint_hierarchy(small_hierarchy_config())
                == fingerprint_hierarchy(small_hierarchy_config()))


class TestMemoryTier:
    def test_identity_preserved(self):
        hierarchy = small_hierarchy_config()
        first = reference_pass("twolf", hierarchy, (), TINY)
        second = reference_pass("twolf", hierarchy, (), TINY)
        assert first is second

    def test_disabled_cache_always_recomputes(self):
        configure_pass_cache(enabled=False)
        hierarchy = small_hierarchy_config()
        first = reference_pass("twolf", hierarchy, (), TINY)
        second = reference_pass("twolf", hierarchy, (), TINY)
        assert first is not second
        assert first.baseline_access_time == second.baseline_access_time


class TestDiskTier:
    def test_round_trip(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        configure_pass_cache(cache_dir=cache_dir)
        hierarchy = small_hierarchy_config()
        first = reference_pass("twolf", hierarchy, (), TINY)

        fresh = configure_pass_cache(cache_dir=cache_dir)
        second = reference_pass("twolf", hierarchy, (), TINY)
        assert fresh.stats.disk_hits == 1
        assert second is not first
        assert second.baseline_access_time == first.baseline_access_time
        assert second.cache_stats == first.cache_stats

    def test_schema_version_rejected(self, tmp_path, monkeypatch):
        cache_dir = str(tmp_path / "cache")
        cache = PassCache(cache_dir=cache_dir)
        cache.store("some-key", {"value": 1})
        assert PassCache(cache_dir=cache_dir).lookup("some-key") is not None

        monkeypatch.setattr(passcache, "SCHEMA_VERSION",
                            passcache.SCHEMA_VERSION + 1)
        assert PassCache(cache_dir=cache_dir).lookup("some-key") is None

    def test_key_mismatch_rejected(self, tmp_path):
        """A (theoretical) SHA collision must not serve the wrong entry."""
        cache_dir = str(tmp_path / "cache")
        cache = PassCache(cache_dir=cache_dir)
        cache.store("key-a", {"value": 1})
        path = cache._path_for("key-a")
        with open(path, "rb") as handle:
            envelope = pickle.load(handle)
        envelope["key"] = "key-b"
        with open(path, "wb") as handle:
            pickle.dump(envelope, handle)
        assert PassCache(cache_dir=cache_dir).lookup("key-a") is None

    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cache = PassCache(cache_dir=cache_dir)
        cache.store("key", {"value": 1})
        with open(cache._path_for("key"), "wb") as handle:
            handle.write(b"not a pickle")
        assert PassCache(cache_dir=cache_dir).lookup("key") is None

    def test_stats_counted(self, tmp_path):
        cache = PassCache(cache_dir=str(tmp_path / "cache"))
        assert cache.lookup("k") is None
        cache.store("k", 1)
        assert cache.lookup("k") == 1
        assert cache.stats.lookups == 2
        assert cache.stats.misses == 1
        assert cache.stats.memory_hits == 1
        assert cache.stats.stores == 1


class TestDiskDegradations:
    """Disk-tier failures are observable: a counter and a warning, never
    a silent recompute (the satellite contract of the resilience PR)."""

    @pytest.fixture
    def registry(self):
        from repro import telemetry

        registry = telemetry.enable_metrics()
        yield registry
        telemetry.reset()

    def test_corrupt_entry_bumps_the_corrupt_counter(self, tmp_path,
                                                     registry):
        cache_dir = str(tmp_path / "cache")
        cache = PassCache(cache_dir=cache_dir)
        cache.store("key", {"value": 1})
        with open(cache._path_for("key"), "wb") as handle:
            handle.write(b"not a pickle")
        assert PassCache(cache_dir=cache_dir).lookup("key") is None
        counters = registry.snapshot()["counters"]
        assert counters["cache.pass.disk.corrupt"] == 1
        assert "cache.pass.disk.schema_mismatch" not in counters

    def test_schema_mismatch_bumps_its_own_counter(self, tmp_path,
                                                   registry, monkeypatch):
        cache_dir = str(tmp_path / "cache")
        cache = PassCache(cache_dir=cache_dir)
        cache.store("key", {"value": 1})
        monkeypatch.setattr(passcache, "SCHEMA_VERSION",
                            passcache.SCHEMA_VERSION + 1)
        assert PassCache(cache_dir=cache_dir).lookup("key") is None
        counters = registry.snapshot()["counters"]
        assert counters["cache.pass.disk.schema_mismatch"] == 1

    def test_plain_miss_is_not_a_degradation(self, tmp_path, registry):
        cache = PassCache(cache_dir=str(tmp_path / "cache"))
        assert cache.lookup("never-stored") is None
        counters = registry.snapshot()["counters"]
        assert "cache.pass.disk.corrupt" not in counters

    def test_injected_corrupt_write_reads_back_as_a_miss(self, tmp_path,
                                                         registry):
        """The cache-write fault site: garbled bytes land on disk, the
        reload degrades to recomputation — never to wrong numbers."""
        from repro.testing.faults import configure_faults

        cache_dir = str(tmp_path / "cache")
        configure_faults("corrupt")
        try:
            PassCache(cache_dir=cache_dir).store("key", {"value": 1})
        finally:
            configure_faults(None)
        assert PassCache(cache_dir=cache_dir).lookup("key") is None
        counters = registry.snapshot()["counters"]
        assert counters["cache.pass.disk.corrupt"] == 1


class TestMulticoreKeys:
    """Satellite regression: every multicore axis must be key-bearing.

    A collision between two topologies differing only in schedule seed or
    core count would serve one topology's contention numbers as the
    other's — the exact stale-result bug the content-addressed cache
    exists to prevent.
    """

    def _key(self, mc):
        from repro.experiments.passcache import multicore_key

        return multicore_key(("twolf",), small_hierarchy_config(),
                             (tmnm_design(12, 3),), mc, TINY)

    def test_schedule_seed_never_collides(self):
        from repro.multicore.config import MulticoreConfig

        keys = {
            self._key(MulticoreConfig(cores=2, schedule="stochastic",
                                      schedule_seed=seed))
            for seed in range(8)
        }
        assert len(keys) == 8

    def test_core_count_never_collides(self):
        from repro.multicore.config import MulticoreConfig

        keys = {self._key(MulticoreConfig(cores=cores))
                for cores in (1, 2, 3, 4, 8)}
        assert len(keys) == 5

    def test_every_topology_axis_is_key_bearing(self):
        """Flipping any single MulticoreConfig field must change the key."""
        import dataclasses as dc

        from repro.multicore.config import MulticoreConfig

        base = MulticoreConfig(cores=2, mnm_sharing="private",
                               l2_policy="inclusive",
                               schedule="round_robin", schedule_seed=0)
        variants = [
            dc.replace(base, cores=4),
            dc.replace(base, mnm_sharing="shared"),
            dc.replace(base, mnm_sharing="hybrid"),
            dc.replace(base, l2_policy="exclusive"),
            dc.replace(base, schedule="stochastic"),
            dc.replace(base, schedule="stochastic", schedule_seed=1),
        ]
        base_key = self._key(base)
        keys = [self._key(variant) for variant in variants]
        assert base_key not in keys
        assert len(set(keys)) == len(keys)

    def test_multicore_and_reference_keys_disjoint(self):
        """A multicore pass can never be served a single-core result."""
        from repro.multicore.config import MulticoreConfig

        hierarchy = small_hierarchy_config()
        single = pass_key("twolf", hierarchy, (tmnm_design(12, 3),), TINY)
        multi = self._key(MulticoreConfig(cores=1))
        assert single != multi
