"""Lease-mechanics tests for the filesystem work queue.

The contracts under test, in roughly the order a fleet relies on them:

1. claims are atomic — concurrent claimers get exactly one winner;
2. leases expire — a dead worker's claim lapses after its TTL and the
   takeover continues the attempt numbering (reassignment == retry);
3. result commitment is at-most-once — duplicate computation is fine,
   the second committer always loses;
4. torn files (tasks, results) quarantine instead of being trusted.
"""

import json
import threading

import pytest

from repro import telemetry
from repro.experiments.backends.queue import (
    QUEUE_MAGIC,
    QUEUE_SCHEMA,
    WorkItem,
    WorkQueue,
)
from repro.experiments.base import ExperimentSettings
from repro.experiments.executor import plan_experiments
from repro.experiments.passcache import configure_pass_cache, key_digest
from repro.testing.faults import configure_faults

TINY = ExperimentSettings(num_instructions=4000, warmup_fraction=0.25,
                          workloads=("twolf",))


@pytest.fixture(autouse=True)
def fresh_state():
    configure_pass_cache()
    configure_faults(None)
    telemetry.enable_metrics()
    yield
    configure_faults(None)
    configure_pass_cache()
    telemetry.reset()


def make_queue(tmp_path, **kwargs) -> WorkQueue:
    return WorkQueue.create(str(tmp_path / "queue"), **kwargs)


def make_items(count=None):
    tasks = plan_experiments(["fig02"], TINY)
    if count is not None:
        tasks = tasks[:count]
    return [WorkItem(index=index, key_digest=key_digest(task.cache_key()),
                     task=task)
            for index, task in enumerate(tasks)]


def counter_value(name: str) -> int:
    return telemetry.get_registry().counter(name).value


class TestHeader:
    def test_create_then_open_roundtrip(self, tmp_path):
        queue = make_queue(tmp_path, flags={"metrics": True},
                           cache_dir=str(tmp_path / "cache"),
                           lease_ttl=7.5)
        opened = WorkQueue.open(queue.root)
        assert opened.flags == {"metrics": True}
        assert opened.cache_dir == str(tmp_path / "cache")
        assert opened.cache_enabled is True
        assert opened.lease_ttl == 7.5

    def test_open_rejects_a_non_queue_directory(self, tmp_path):
        with pytest.raises(ValueError, match="not a repro work queue"):
            WorkQueue.open(str(tmp_path), wait_seconds=0.0)

    def test_open_rejects_a_mismatched_schema(self, tmp_path):
        queue = make_queue(tmp_path)
        header = dict(queue.header, schema=QUEUE_SCHEMA + 1)
        with open(queue._header_path(), "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header))
        with pytest.raises(ValueError, match="mismatched"):
            WorkQueue.open(queue.root, wait_seconds=0.0)

    def test_recreate_clears_shutdown_and_keeps_results(self, tmp_path):
        queue = make_queue(tmp_path)
        item = make_items(1)[0]
        queue.enqueue(item)
        queue.commit_result(item.key_digest,
                            {"magic": QUEUE_MAGIC, "schema": QUEUE_SCHEMA})
        queue.request_shutdown()
        reopened = WorkQueue.create(queue.root)
        assert not reopened.shutdown_requested()
        assert reopened.has_result(item.key_digest)


class TestEnqueue:
    def test_roundtrip_preserves_the_task(self, tmp_path):
        queue = make_queue(tmp_path)
        item = make_items(1)[0]
        queue.enqueue(item)
        loaded = queue.load_item(item.key_digest)
        assert loaded is not None
        assert loaded.index == item.index
        assert loaded.task.cache_key() == item.task.cache_key()

    def test_enqueue_is_idempotent(self, tmp_path):
        queue = make_queue(tmp_path)
        item = make_items(1)[0]
        queue.enqueue(item)
        queue.enqueue(item)
        assert queue.pending_digests() == [item.key_digest]

    def test_pending_excludes_committed_results(self, tmp_path):
        queue = make_queue(tmp_path)
        items = make_items(2)
        for item in items:
            queue.enqueue(item)
        queue.commit_result(items[0].key_digest,
                            {"magic": QUEUE_MAGIC, "schema": QUEUE_SCHEMA})
        assert queue.pending_digests() == sorted(
            [items[1].key_digest])

    def test_torn_task_file_is_quarantined(self, tmp_path):
        queue = make_queue(tmp_path)
        item = make_items(1)[0]
        queue.enqueue(item)
        path = queue.task_path(item.key_digest)
        with open(path, "rb") as handle:
            data = handle.read()
        with open(path, "wb") as handle:
            handle.write(data[: len(data) // 2])
        assert queue.load_item(item.key_digest) is None
        assert counter_value("queue.task.quarantined") == 1
        # The slot is free again: a re-enqueue fully restores the task.
        queue.enqueue(item)
        assert queue.load_item(item.key_digest) is not None

    def test_injected_torn_enqueue_quarantines_then_recovers(self, tmp_path):
        queue = make_queue(tmp_path)
        item = make_items(1)[0]
        configure_faults(json.dumps(
            {"site": "queue-write", "kind": "torn", "fail_attempts": 1}))
        queue.enqueue(item)
        configure_faults(None)
        assert queue.load_item(item.key_digest) is None  # quarantined
        queue.enqueue(item)  # the controller's re-enqueue path
        assert queue.load_item(item.key_digest) is not None


class TestClaims:
    def test_concurrent_claimers_get_exactly_one_winner(self, tmp_path):
        root = str(tmp_path / "queue")
        WorkQueue.create(root)
        digest = "f" * 16
        barrier = threading.Barrier(8)
        wins = []

        def contend(worker: str) -> None:
            queue = WorkQueue.open(root)
            barrier.wait()
            lease = queue.claim(digest, worker, ttl=30.0)
            if lease is not None:
                wins.append(lease)

        threads = [threading.Thread(target=contend, args=(f"w{i}",))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(wins) == 1
        assert wins[0].attempt == 1

    def test_live_lease_cannot_be_claimed(self, tmp_path):
        queue = make_queue(tmp_path)
        assert queue.claim("d" * 16, "alpha", ttl=30.0) is not None
        assert queue.claim("d" * 16, "beta", ttl=30.0) is None

    def test_expired_lease_taken_over_with_next_attempt(self, tmp_path):
        queue = make_queue(tmp_path)
        first = queue.claim("d" * 16, "alpha", ttl=0.05)
        assert first is not None and first.attempt == 1
        deadline = first.deadline
        import time
        while time.time() <= deadline:  # wait out the tiny TTL
            time.sleep(0.01)
        second = queue.claim("d" * 16, "beta", ttl=30.0)
        assert second is not None
        assert second.worker == "beta"
        assert second.attempt == 2
        assert counter_value("queue.lease.taken_over") == 1

    def test_attempt_numbering_includes_recorded_errors(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.record_error("d" * 16, 1, "alpha", "Boom", "first", True)
        queue.record_error("d" * 16, 2, "alpha", "Boom", "second", True)
        lease = queue.claim("d" * 16, "beta", ttl=30.0)
        assert lease is not None
        assert lease.attempt == 3

    def test_renew_extends_a_live_lease(self, tmp_path):
        queue = make_queue(tmp_path)
        lease = queue.claim("d" * 16, "alpha", ttl=30.0)
        renewed = queue.renew(lease)
        assert renewed is not None
        assert renewed.deadline >= lease.deadline
        assert renewed.nonce == lease.nonce

    def test_renew_detects_takeover(self, tmp_path):
        queue = make_queue(tmp_path)
        lease = queue.claim("d" * 16, "alpha", ttl=0.05)
        deadline = lease.deadline
        import time
        while time.time() <= deadline:
            time.sleep(0.01)
        assert queue.claim("d" * 16, "beta", ttl=30.0) is not None
        assert queue.renew(lease) is None
        assert counter_value("queue.lease.lost") == 1

    def test_release_only_drops_our_own_lease(self, tmp_path):
        queue = make_queue(tmp_path)
        stale = queue.claim("d" * 16, "alpha", ttl=0.05)
        deadline = stale.deadline
        import time
        while time.time() <= deadline:
            time.sleep(0.01)
        fresh = queue.claim("d" * 16, "beta", ttl=30.0)
        queue.release(stale)  # superseded: must not unlink beta's lease
        assert queue.read_lease("d" * 16) is not None
        queue.release(fresh)
        assert queue.read_lease("d" * 16) is None

    def test_injected_claim_steal_forces_a_duplicate_race(self, tmp_path):
        queue = make_queue(tmp_path)
        assert queue.claim("d" * 16, "alpha", ttl=30.0) is not None
        configure_faults(json.dumps(
            {"site": "claim", "kind": "steal", "fail_attempts": 5}))
        stolen = queue.claim("d" * 16, "beta", ttl=30.0)
        assert stolen is not None
        assert stolen.attempt == 2
        assert counter_value("queue.lease.steal_injected") == 1


class TestResults:
    ENVELOPE = {"magic": QUEUE_MAGIC, "schema": QUEUE_SCHEMA, "worker": "a"}

    def test_commitment_is_at_most_once(self, tmp_path):
        queue = make_queue(tmp_path)
        twin = dict(self.ENVELOPE, worker="b")
        assert queue.commit_result("d" * 16, self.ENVELOPE) is True
        assert queue.commit_result("d" * 16, twin) is False
        assert queue.load_result("d" * 16)["worker"] == "a"
        assert counter_value("queue.results.duplicate") == 1

    def test_torn_result_is_quarantined(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.commit_result("d" * 16, self.ENVELOPE)
        path = queue.result_path("d" * 16)
        with open(path, "wb") as handle:
            handle.write(b"\x80truncated")
        assert queue.load_result("d" * 16) is None
        assert counter_value("queue.result.quarantined") == 1
        # The digest reads as pending again, so the task recomputes.
        assert not queue.has_result("d" * 16)

    def test_error_records_roundtrip(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.record_error("d" * 16, 2, "alpha", "ValueError", "bad", False)
        records = queue.load_errors("d" * 16)
        assert len(records) == 1
        assert records[0]["attempt"] == 2
        assert records[0]["retryable"] is False
