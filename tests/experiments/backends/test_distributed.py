"""Distributed-backend tests: byte-identity, chaos convergence, abort.

The acceptance gate of the distributed farm, at unit level: a run
fanned out over real worker subprocesses — even with every first
attempt SIGKILLed — must seed the pass cache with exactly the payloads
a serial in-process run computes, and its merged simulation counters
must match the serial run's (``executor.*`` / ``queue.*`` /
``checkpoint.*`` / ``cache.*`` health counters excluded, per the
byte-identity contract).
"""

import json
import pickle

import pytest

from repro import telemetry
from repro.experiments.backends.distributed import DistributedBackend
from repro.experiments.backends.queue import WorkItem, WorkQueue
from repro.experiments.backends.worker import WorkerOptions, run_worker
from repro.experiments.base import ExperimentSettings
from repro.experiments.executor import execute_tasks, plan_experiments
from repro.experiments.passcache import (
    configure_pass_cache,
    get_pass_cache,
    key_digest,
)
from repro.experiments.resilience import (
    ExecutionPolicy,
    RetryPolicy,
    TaskExecutionError,
)
from repro.testing.faults import configure_faults

TINY = ExperimentSettings(num_instructions=4000, warmup_fraction=0.25,
                          workloads=("twolf",))
FAST = ExecutionPolicy(retry=RetryPolicy(max_attempts=3, backoff_base=0.0))

#: Health-counter prefixes excluded from the byte-identity contract.
HEALTH_PREFIXES = ("executor.", "queue.", "checkpoint.", "cache.")


@pytest.fixture(autouse=True)
def fresh_state(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    configure_pass_cache()
    configure_faults(None)
    telemetry.reset()
    yield
    configure_faults(None)
    configure_pass_cache()
    telemetry.reset()


def sim_counters() -> dict:
    counters = telemetry.get_registry().snapshot()["counters"]
    return {name: value for name, value in counters.items()
            if not name.startswith(HEALTH_PREFIXES)}


def serial_reference(tasks, cache_dir):
    """Payloads + filtered counters of a clean in-process serial run."""
    telemetry.reset()
    telemetry.enable_metrics()
    configure_pass_cache(cache_dir=str(cache_dir))
    assert execute_tasks(tasks, jobs=1, policy=FAST) == len(tasks)
    cache = get_pass_cache()
    payloads = {task.cache_key(): pickle.dumps(cache.lookup(task.cache_key()))
                for task in tasks}
    return payloads, sim_counters()


def distributed_run(tasks, cache_dir, queue_dir, workers=2, **kwargs):
    """Payloads + filtered counters of a distributed run."""
    telemetry.reset()
    telemetry.enable_metrics()
    configure_pass_cache(cache_dir=str(cache_dir))
    backend = DistributedBackend(str(queue_dir), workers=workers,
                                 poll_interval=0.05, **kwargs)
    assert execute_tasks(tasks, jobs=1, policy=FAST,
                         backend=backend) == len(tasks)
    cache = get_pass_cache()
    payloads = {task.cache_key(): pickle.dumps(cache.lookup(task.cache_key()))
                for task in tasks}
    return payloads, sim_counters()


class TestByteIdentity:
    def test_clean_distributed_run_matches_serial(self, tmp_path):
        tasks = plan_experiments(["fig02"], TINY)[:3]
        want_payloads, want_counters = serial_reference(
            tasks, tmp_path / "serial-cache")
        got_payloads, got_counters = distributed_run(
            tasks, tmp_path / "dist-cache", tmp_path / "queue")
        assert got_payloads == want_payloads
        assert got_counters == want_counters

    def test_sigkill_chaos_converges_to_the_same_bytes(
            self, tmp_path, monkeypatch):
        tasks = plan_experiments(["fig02"], TINY)[:2]
        want_payloads, want_counters = serial_reference(
            tasks, tmp_path / "serial-cache")
        # Every task's first attempt SIGKILLs its worker mid-claim; the
        # lease lapses, the controller respawns, attempt 2 succeeds.
        monkeypatch.setenv("REPRO_FAULTS", json.dumps(
            {"site": "task", "kind": "sigkill", "fail_attempts": 1}))
        got_payloads, got_counters = distributed_run(
            tasks, tmp_path / "dist-cache", tmp_path / "queue",
            workers=2, lease_ttl=0.75)
        assert got_payloads == want_payloads
        assert got_counters == want_counters
        registry = telemetry.get_registry()
        assert registry.counter("executor.tasks.recovered").value == len(tasks)
        assert registry.counter("queue.worker.respawned").value >= 1


class TestResume:
    def test_journal_resumed_continuation_recomputes_only_new_work(
            self, tmp_path):
        """An interrupted distributed run continues where it stopped."""
        from repro.experiments.checkpoint import RunJournal

        tasks = plan_experiments(["fig02"], TINY)[:3]
        run_dir = str(tmp_path / "run")
        cache_dir = RunJournal.passes_dir(run_dir)
        # First (interrupted) run: only two of the three tasks finish.
        telemetry.reset()
        telemetry.enable_metrics()
        configure_pass_cache(cache_dir=cache_dir)
        with RunJournal.open(run_dir) as journal:
            backend = DistributedBackend(str(tmp_path / "q1"), workers=1,
                                         poll_interval=0.05)
            assert execute_tasks(tasks[:2], jobs=1, policy=FAST,
                                 journal=journal, backend=backend) == 2
        # The continuation: same run dir, the full task list.
        telemetry.reset()
        telemetry.enable_metrics()
        configure_pass_cache(cache_dir=cache_dir)
        with RunJournal.open(run_dir) as journal:
            assert len(journal) == 2
            backend = DistributedBackend(str(tmp_path / "q2"), workers=1,
                                         poll_interval=0.05)
            assert execute_tasks(tasks, jobs=1, policy=FAST,
                                 journal=journal, backend=backend) == 1
            assert all(journal.is_complete(task.cache_key())
                       for task in tasks)
        registry = telemetry.get_registry()
        assert registry.counter("executor.tasks.resumed").value == 2
        assert registry.counter("executor.tasks.completed").value == 1


class TestMergeOnly:
    def test_workers_zero_merges_precommitted_envelopes(self, tmp_path):
        """An external fleet can serve the queue; the controller merges."""
        tasks = plan_experiments(["fig02"], TINY)[:2]
        queue_dir = str(tmp_path / "queue")
        queue = WorkQueue.create(queue_dir,
                                 cache_dir=str(tmp_path / "worker-cache"))
        for index, task in enumerate(tasks):
            queue.enqueue(WorkItem(index=index,
                                   key_digest=key_digest(task.cache_key()),
                                   task=task))
        # Stand-in for an external worker on another host.
        assert run_worker(WorkerOptions(queue_dir=queue_dir, worker_id="ext",
                                        exit_when_drained=True)) == 0
        # The in-process worker repointed the global cache; start clean so
        # the controller sees the tasks as pending and must merge.
        telemetry.reset()
        telemetry.enable_metrics()
        configure_pass_cache(cache_dir=str(tmp_path / "ctrl-cache"))
        backend = DistributedBackend(queue_dir, workers=0, poll_interval=0.05)
        assert execute_tasks(tasks, jobs=1, policy=FAST,
                             backend=backend) == len(tasks)
        cache = get_pass_cache()
        for task in tasks:
            assert cache.lookup(task.cache_key()) is not None
        completed = telemetry.get_registry().counter(
            "executor.tasks.completed").value
        assert completed == len(tasks)


class TestAbort:
    def test_fatal_error_record_aborts_the_run(self, tmp_path):
        tasks = plan_experiments(["fig02"], TINY)[:1]
        queue_dir = str(tmp_path / "queue")
        queue = WorkQueue.create(queue_dir)
        digest = key_digest(tasks[0].cache_key())
        queue.record_error(digest, 1, "ext", "ValueError",
                           "poison task", False)
        backend = DistributedBackend(queue_dir, workers=0, poll_interval=0.05)
        with pytest.raises(TaskExecutionError, match="poison task"):
            execute_tasks(tasks, jobs=1, policy=FAST, backend=backend)

    def test_exhausted_retry_budget_aborts_the_run(self, tmp_path):
        tasks = plan_experiments(["fig02"], TINY)[:1]
        queue_dir = str(tmp_path / "queue")
        queue = WorkQueue.create(queue_dir)
        digest = key_digest(tasks[0].cache_key())
        for attempt in (1, 2, 3):
            queue.record_error(digest, attempt, "ext", "InjectedFault",
                               f"flaky (attempt {attempt})", True)
        backend = DistributedBackend(queue_dir, workers=0, poll_interval=0.05)
        with pytest.raises(TaskExecutionError, match="flaky"):
            execute_tasks(tasks, jobs=1, policy=FAST, backend=backend)
