"""Worker-loop tests: drain, skip, retry numbering, heartbeat renewal.

These run :func:`run_worker` in-process against a real queue directory
— the same loop ``repro-mnm worker`` serves — so they cover the claim/
execute/commit cycle without subprocess plumbing.  The subprocess side
(spawning, respawning, SIGKILL chaos) is covered by the distributed-
backend tests and the CLI signal tests.
"""

import json
import time

import pytest

from repro import telemetry
from repro.experiments.backends.queue import WorkItem, WorkQueue
from repro.experiments.backends.worker import (
    WorkerOptions,
    _Heartbeat,
    default_worker_id,
    run_worker,
)
from repro.experiments.base import ExperimentSettings
from repro.experiments.executor import plan_experiments
from repro.experiments.passcache import configure_pass_cache, key_digest
from repro.testing.faults import configure_faults

TINY = ExperimentSettings(num_instructions=4000, warmup_fraction=0.25,
                          workloads=("twolf",))


@pytest.fixture(autouse=True)
def fresh_state(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    configure_pass_cache()
    configure_faults(None)
    telemetry.enable_metrics()
    yield
    configure_faults(None)
    configure_pass_cache()
    telemetry.reset()


def populated_queue(tmp_path, count=2, **kwargs):
    queue = WorkQueue.create(str(tmp_path / "queue"),
                             cache_dir=str(tmp_path / "cache"), **kwargs)
    tasks = plan_experiments(["fig02"], TINY)[:count]
    items = [WorkItem(index=index, key_digest=key_digest(task.cache_key()),
                      task=task)
             for index, task in enumerate(tasks)]
    for item in items:
        queue.enqueue(item)
    return queue, items


class TestRunWorker:
    def test_drains_the_queue_and_commits_every_task(self, tmp_path):
        queue, items = populated_queue(tmp_path)
        code = run_worker(WorkerOptions(queue_dir=queue.root,
                                        worker_id="w0",
                                        exit_when_drained=True))
        assert code == 0
        for item in items:
            envelope = queue.load_result(item.key_digest)
            assert envelope is not None
            assert envelope["worker"] == "w0"
            assert envelope["attempt"] == 1
            assert envelope["result"] is not None
            # The lease is released once the result is committed.
            assert queue.read_lease(item.key_digest) is None

    def test_skips_precommitted_results(self, tmp_path):
        queue, items = populated_queue(tmp_path)
        sentinel = {"magic": "repro-workqueue", "schema": 1,
                    "worker": "elsewhere", "attempt": 1}
        queue.commit_result(items[0].key_digest, dict(sentinel))
        run_worker(WorkerOptions(queue_dir=queue.root, worker_id="w0",
                                 exit_when_drained=True))
        # The pre-committed envelope was not recomputed or replaced.
        assert queue.load_result(items[0].key_digest)["worker"] == "elsewhere"
        assert queue.load_result(items[1].key_digest)["worker"] == "w0"

    def test_max_tasks_bounds_the_serving_loop(self, tmp_path):
        queue, items = populated_queue(tmp_path)
        code = run_worker(WorkerOptions(queue_dir=queue.root,
                                        worker_id="w0", max_tasks=1))
        assert code == 0
        done = [item for item in items if queue.has_result(item.key_digest)]
        assert len(done) == 1

    def test_shutdown_marker_exits_before_serving(self, tmp_path):
        queue, items = populated_queue(tmp_path)
        queue.request_shutdown()
        code = run_worker(WorkerOptions(queue_dir=queue.root,
                                        worker_id="w0"))
        assert code == 0
        assert not any(queue.has_result(item.key_digest) for item in items)

    def test_failed_attempts_are_recorded_then_retried_in_place(
            self, tmp_path, monkeypatch):
        queue, items = populated_queue(tmp_path, count=1)
        monkeypatch.setenv("REPRO_FAULTS", json.dumps(
            {"site": "task", "kind": "raise", "fail_attempts": 2}))
        code = run_worker(WorkerOptions(queue_dir=queue.root,
                                        worker_id="w0",
                                        exit_when_drained=True))
        assert code == 0
        digest = items[0].key_digest
        errors = queue.load_errors(digest)
        assert [record["attempt"] for record in errors] == [1, 2]
        assert all(record["retryable"] for record in errors)
        envelope = queue.load_result(digest)
        assert envelope is not None
        assert envelope["attempt"] == 3  # numbering continued past errors

    def test_rejects_a_missing_queue(self, tmp_path):
        with pytest.raises(ValueError):
            run_worker(WorkerOptions(queue_dir=str(tmp_path / "nope"),
                                     wait_seconds=0.0))


class TestHeartbeat:
    def test_renewal_advances_the_deadline(self, tmp_path):
        queue = WorkQueue.create(str(tmp_path / "queue"))
        lease = queue.claim("d" * 16, "alpha", ttl=0.3)
        heartbeat = _Heartbeat(queue, lease)
        heartbeat.start()
        try:
            time.sleep(0.35)
            current = queue.read_lease("d" * 16)
            assert current is not None
            assert current.deadline > lease.deadline
        finally:
            heartbeat.stop()

    def test_stalled_heartbeat_lets_the_lease_lapse(self, tmp_path):
        queue = WorkQueue.create(str(tmp_path / "queue"))
        lease = queue.claim("d" * 16, "alpha", ttl=0.3)
        heartbeat = _Heartbeat(queue, lease, stalled=True)
        heartbeat.start()
        try:
            time.sleep(0.35)
            current = queue.read_lease("d" * 16)
            assert current is not None
            assert current.deadline == lease.deadline  # never renewed
            # Another worker can now take the task over.
            takeover = queue.claim("d" * 16, "beta", ttl=30.0)
            assert takeover is not None
            assert takeover.attempt == 2
        finally:
            heartbeat.stop()


def test_default_worker_id_is_queue_unique():
    assert default_worker_id().endswith(str(__import__("os").getpid()))
