"""Tests for the Table MNM."""

import pytest

from repro.core.tmnm import COUNTER_BITS, COUNTER_MAX, CounterTable, TMNM


class TestCounterTable:
    def test_zero_counter_proves_miss(self):
        table = CounterTable(index_bits=6)
        assert table.is_definite_miss(5)
        table.on_place(5)
        assert not table.is_definite_miss(5)

    def test_place_replace_round_trip(self):
        table = CounterTable(6)
        table.on_place(5)
        table.on_replace(5)
        assert table.is_definite_miss(5)

    def test_aliasing_addresses_share_slot(self):
        table = CounterTable(6)
        table.on_place(5)
        assert not table.is_definite_miss(5 + 64)   # same low 6 bits
        assert table.is_definite_miss(6)

    def test_counter_exact_below_saturation(self):
        table = CounterTable(6)
        for _ in range(3):
            table.on_place(5)
        assert table.count(5) == 3
        for _ in range(3):
            table.on_replace(5)
        assert table.is_definite_miss(5)

    def test_saturation_is_sticky(self):
        """Section 3.3: a saturated counter means 'maybe' until a flush."""
        table = CounterTable(6)
        for _ in range(COUNTER_MAX + 5):
            table.on_place(5)
        assert table.count(5) == COUNTER_MAX
        for _ in range(COUNTER_MAX + 5):
            table.on_replace(5)
        assert table.count(5) == COUNTER_MAX  # sticky
        assert not table.is_definite_miss(5)
        assert table.saturated_slots == 1

    def test_flush_resets_saturation(self):
        table = CounterTable(6)
        for _ in range(COUNTER_MAX + 1):
            table.on_place(5)
        table.reset()
        assert table.count(5) == 0
        assert table.is_definite_miss(5)

    def test_underflow_defended(self):
        table = CounterTable(6)
        table.on_replace(5)  # inconsistent stream: stay at zero
        assert table.count(5) == 0

    def test_bit_offset(self):
        table = CounterTable(4, bit_offset=8)
        table.on_place(0x300)
        assert not table.is_definite_miss(0x3FF)  # same bits 8..11
        assert table.is_definite_miss(0x400)

    def test_storage_bits(self):
        assert CounterTable(10).storage_bits == 1024 * COUNTER_BITS

    def test_validation(self):
        with pytest.raises(ValueError):
            CounterTable(0)
        with pytest.raises(ValueError):
            CounterTable(4, bit_offset=-1)
        with pytest.raises(ValueError):
            CounterTable(4, counter_bits=0)


class TestTMNM:
    def test_paper_naming(self):
        assert TMNM(12, 3).name == "TMNM_12x3"

    def test_multiple_tables_increase_discrimination(self):
        """The paper observes TMNM_10x3 beats the bigger TMNM_11x2: tables
        over different slices jointly reject more aliases."""
        single = TMNM(6, 1)
        double = TMNM(6, 2)
        for address in (0x111, 0x765, 0xABC):
            single.on_place(address)
            double.on_place(address)
        probes = range(0, 1 << 12, 7)
        single_flags = sum(single.is_definite_miss(p) for p in probes)
        double_flags = sum(double.is_definite_miss(p) for p in probes)
        assert double_flags >= single_flags

    def test_placed_never_flagged(self):
        tmnm = TMNM(10, 3)
        addresses = [0, 1, 0x3FF, 0x12345, 0xFFFFFF]
        for address in addresses:
            tmnm.on_place(address)
        for address in addresses:
            assert not tmnm.is_definite_miss(address)

    def test_replace_restores_miss(self):
        tmnm = TMNM(10, 2)
        tmnm.on_place(0x123)
        tmnm.on_replace(0x123)
        assert tmnm.is_definite_miss(0x123)

    def test_flush(self):
        tmnm = TMNM(10, 2)
        tmnm.on_place(0x123)
        tmnm.on_flush()
        assert tmnm.is_definite_miss(0x123)

    def test_storage_bits_sum_tables(self):
        assert TMNM(10, 3).storage_bits == 3 * 1024 * COUNTER_BITS

    def test_validation(self):
        with pytest.raises(ValueError):
            TMNM(10, 0)
        with pytest.raises(ValueError):
            TMNM(10, 2, offsets=[0, 1, 2])
