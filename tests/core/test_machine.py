"""Tests for the MostlyNoMachine coordinator."""

import pytest

from repro.cache.cache import AccessKind
from repro.cache.hierarchy import CacheHierarchy
from repro.core.base import NullFilter, Placement
from repro.core.machine import MNMDesign, MostlyNoMachine
from repro.core.perfect import PerfectFilter
from repro.core.presets import (
    hmnm_design,
    null_design,
    parse_design,
    perfect_design,
    rmnm_design,
    tmnm_design,
)
from tests.conftest import small_hierarchy_config


def make_machine(design: MNMDesign, levels: int = 3) -> MostlyNoMachine:
    return MostlyNoMachine(CacheHierarchy(small_hierarchy_config(levels)), design)


class TestConstruction:
    def test_tracks_tiers_two_and_up(self):
        machine = make_machine(perfect_design(), levels=3)
        assert set(machine.tracked_cache_names()) == {"ul2", "ul3"}

    def test_level1_not_filtered(self):
        machine = make_machine(perfect_design())
        with pytest.raises(KeyError):
            machine.filter_for("dl1")

    def test_null_design_builds_null_filters(self):
        machine = make_machine(null_design())
        assert isinstance(machine.filter_for("ul2"), NullFilter)

    def test_perfect_design_builds_oracles(self):
        machine = make_machine(perfect_design())
        assert isinstance(machine.filter_for("ul2"), PerfectFilter)

    def test_rmnm_shared_across_lanes(self):
        machine = make_machine(rmnm_design(128, 2))
        assert machine.rmnm is not None
        assert machine.rmnm.num_lanes == 2  # ul2 and ul3

    def test_granule_is_tier2_block(self):
        machine = make_machine(tmnm_design(8, 1))
        assert machine.granule == 16

    def test_placement_and_delay_from_design(self):
        design = tmnm_design(8, 1).with_placement(Placement.SERIAL)
        machine = make_machine(design)
        assert machine.placement is Placement.SERIAL
        assert machine.delay == 2


class TestQuery:
    def test_bits_length_matches_tiers(self):
        machine = make_machine(perfect_design(), levels=4)
        bits = machine.query(0x1234, AccessKind.LOAD)
        assert len(bits) == 4

    def test_level1_bit_always_false(self):
        machine = make_machine(perfect_design())
        for _ in range(3):
            bits = machine.query(0x40, AccessKind.LOAD)
            assert bits[0] is False
            machine.hierarchy.access(0x40, AccessKind.LOAD)

    def test_perfect_bits_track_residency(self):
        machine = make_machine(perfect_design())
        hierarchy = machine.hierarchy
        bits = machine.query(0x40, AccessKind.LOAD)
        assert bits[1] and bits[2]  # cold: absent everywhere
        hierarchy.access(0x40, AccessKind.LOAD)
        bits = machine.query(0x40, AccessKind.LOAD)
        assert not bits[1] and not bits[2]

    def test_query_counts_stats(self):
        machine = make_machine(perfect_design())
        machine.query(0x40, AccessKind.LOAD)
        stats = machine.stats_for("ul2")
        assert stats.lookups == 1
        assert stats.miss_answers == 1

    def test_granule_fanout_events(self):
        """A fill of a large-block outer cache must register every covered
        granule with the filter (Section 3.1's multiple updates)."""
        machine = make_machine(perfect_design(), levels=3)
        hierarchy = machine.hierarchy
        ul3 = hierarchy.find_cache("ul3")
        granule = machine.granule
        assert ul3.config.block_size == 2 * granule
        hierarchy.access(0x1000, AccessKind.LOAD)
        # the sibling granule inside the same ul3 block is also resident
        sibling = 0x1000 + granule
        bits = machine.query(sibling, AccessKind.LOAD)
        assert not bits[2]  # ul3 holds it
        assert ul3.contains(sibling)


class TestStorageAndFlush:
    def test_storage_counts_rmnm_once(self):
        machine = make_machine(hmnm_design(1))
        rmnm_bits = machine.rmnm.storage_bits
        total = machine.storage_bits
        # subtracting the shared structure leaves the per-level filters
        assert total > rmnm_bits

    def test_flush_resets_filters(self):
        machine = make_machine(perfect_design())
        machine.hierarchy.access(0x40, AccessKind.LOAD)
        machine.flush()
        bits = machine.query(0x40, AccessKind.LOAD)
        assert bits[1] and bits[2]

    def test_repr(self):
        machine = make_machine(perfect_design())
        assert "PERFECT" in repr(machine)


class TestDesign:
    def test_with_placement_copies(self):
        design = parse_design("TMNM_10x1")
        serial = design.with_placement(Placement.SERIAL)
        assert serial.placement is Placement.SERIAL
        assert design.placement is Placement.PARALLEL
        assert serial.name == design.name

    def test_factories_for_falls_back_to_default(self):
        design = hmnm_design(2)
        assert design.factories_for(2) == design.factories_for(3)
        assert design.factories_for(4) == design.factories_for(5)
        assert design.factories_for(2) != design.factories_for(4)
