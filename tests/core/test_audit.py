"""Tests for the decision-log audit machinery."""

import random

import pytest

from repro.cache.cache import AccessKind
from repro.cache.hierarchy import CacheHierarchy
from repro.core.audit import (
    AuditReport,
    DecisionLog,
    LoggingMachine,
    audit_log,
    audited_run,
)
from repro.core.machine import MostlyNoMachine
from repro.core.presets import hmnm_design, perfect_design, tmnm_design
from tests.conftest import random_references, small_hierarchy_config


CONFIG = small_hierarchy_config(3)


def make_references(count=1500, seed=6):
    return random_references(random.Random(seed), count, span=1 << 14)


class TestLoggingMachine:
    def test_logs_every_query(self):
        hierarchy = CacheHierarchy(CONFIG)
        machine = LoggingMachine(MostlyNoMachine(hierarchy, tmnm_design(8, 1)))
        for address, kind in make_references(100):
            machine.query(address, kind)
            hierarchy.access(address, kind)
        assert len(machine.log) == 100
        assert machine.log.design_name == "TMNM_8x1"
        assert machine.log.hierarchy_name == CONFIG.name

    def test_logged_bits_match_live_answers(self):
        hierarchy = CacheHierarchy(CONFIG)
        machine = LoggingMachine(MostlyNoMachine(hierarchy, tmnm_design(8, 1)))
        for address, kind in make_references(50):
            bits = machine.query(address, kind)
            assert machine.log.records[-1].bits == bits
            hierarchy.access(address, kind)


class TestAudit:
    def test_real_designs_audit_clean(self):
        for design in (tmnm_design(8, 2), hmnm_design(2), perfect_design()):
            _log, report = audited_run(make_references(), CONFIG, design)
            assert report.sound, design.name
            assert report.unsound_answers == 0
            assert report.records == 1500

    def test_perfect_design_has_full_recall(self):
        _log, report = audited_run(make_references(), CONFIG,
                                   perfect_design())
        assert report.opportunity_recall == 1.0
        assert report.missed_opportunities == 0

    def test_real_design_recall_between_zero_and_one(self):
        _log, report = audited_run(make_references(), CONFIG,
                                   tmnm_design(6, 1))
        assert 0.0 <= report.opportunity_recall <= 1.0

    def test_forged_log_is_caught(self):
        """An answer claiming a miss for a resident block must be flagged."""
        references = make_references(200)
        hierarchy = CacheHierarchy(CONFIG)
        log = DecisionLog(design_name="FORGED",
                          hierarchy_name=CONFIG.name)
        for index, (address, kind) in enumerate(references):
            outcome = hierarchy.access(address, kind)
            # forge: claim a miss at the supplying tier occasionally
            bits = [False] * hierarchy.num_tiers
            if (outcome.supplier is not None and outcome.supplier >= 2
                    and index % 7 == 0):
                bits[outcome.supplier - 1] = True
            log.append(address, kind, tuple(bits))
        # the forged "misses" target the tier that SUPPLIED the data one
        # access later, so the replayed oracle sees the block resident
        report = audit_log(log, CONFIG)
        assert not report.sound
        assert report.first_violation is not None

    def test_empty_log(self):
        report = audit_log(DecisionLog("X", CONFIG.name), CONFIG)
        assert report.sound
        assert report.records == 0
        assert report.opportunity_recall == 1.0
