"""Tests for the counting-Bloom baseline filter."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.cache import AccessKind, Cache, CacheConfig
from repro.cache.hierarchy import CacheHierarchy
from repro.core.bloom import COUNTER_MAX, BloomMissFilter, bloom_design
from repro.core.machine import MostlyNoMachine
from tests.conftest import random_references, small_hierarchy_config


class TestBloomFilter:
    def test_unseen_is_definite_miss(self):
        bloom = BloomMissFilter(8, 2)
        assert bloom.is_definite_miss(0x123)

    def test_place_replace_round_trip(self):
        bloom = BloomMissFilter(8, 2)
        bloom.on_place(0x123)
        assert not bloom.is_definite_miss(0x123)
        bloom.on_replace(0x123)
        assert bloom.is_definite_miss(0x123)

    def test_aliasing_never_unsound(self):
        bloom = BloomMissFilter(3, 2)  # tiny: heavy aliasing
        placed = [7, 77, 777, 7777]
        for addr in placed:
            bloom.on_place(addr)
        for addr in placed:
            assert not bloom.is_definite_miss(addr)
        # remove one; the rest must stay protected
        bloom.on_replace(7)
        for addr in placed[1:]:
            assert not bloom.is_definite_miss(addr)

    def test_sticky_saturation(self):
        bloom = BloomMissFilter(1, 1)  # 2 slots: immediate saturation
        for _ in range(COUNTER_MAX + 3):
            bloom.on_place(0)
        for _ in range(COUNTER_MAX + 3):
            bloom.on_replace(0)
        assert not bloom.is_definite_miss(0)  # saturated slots stay maybe
        assert bloom.saturated_slots >= 1

    def test_flush(self):
        bloom = BloomMissFilter(8, 2)
        bloom.on_place(5)
        bloom.on_flush()
        assert bloom.is_definite_miss(5)

    def test_more_hashes_more_discrimination(self):
        rng = random.Random(0)
        placed = [rng.randrange(1 << 24) for _ in range(64)]
        probes = [rng.randrange(1 << 24) for _ in range(2000)]
        flagged = {}
        for hashes in (1, 3):
            bloom = BloomMissFilter(9, hashes)
            for addr in placed:
                bloom.on_place(addr)
            flagged[hashes] = sum(bloom.is_definite_miss(p) for p in probes)
        assert flagged[3] >= flagged[1]

    def test_naming_and_storage(self):
        bloom = BloomMissFilter(10, 3)
        assert bloom.name == "BLOOM_10x3"
        assert bloom.storage_bits == 1024 * 4

    def test_validation(self):
        with pytest.raises(ValueError):
            BloomMissFilter(0)
        with pytest.raises(ValueError):
            BloomMissFilter(8, 0)
        with pytest.raises(ValueError):
            BloomMissFilter(8, 9)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=0x3FFF), min_size=5,
                    max_size=300))
    def test_soundness_against_real_cache(self, addresses):
        cache = Cache(CacheConfig(name="c", level=2, size_bytes=256,
                                  associativity=2, block_size=16,
                                  hit_latency=1))
        bloom = BloomMissFilter(6, 2)
        cache.add_place_listener(lambda c, blk: bloom.on_place(blk))
        cache.add_replace_listener(lambda c, blk: bloom.on_replace(blk))
        for address in addresses:
            blk = cache.block_addr(address)
            if bloom.is_definite_miss(blk):
                assert not cache.contains_block(blk)
            if not cache.probe(address):
                cache.fill(address)


class TestBloomDesign:
    def test_design_builds_and_is_sound(self):
        rng = random.Random(1)
        hierarchy = CacheHierarchy(small_hierarchy_config(3))
        machine = MostlyNoMachine(hierarchy, bloom_design(8, 2))
        assert machine.design.name == "BLOOM_8x2"
        for address, kind in random_references(rng, 1500, span=1 << 14):
            bits = machine.query(address, kind)
            outcome = hierarchy.access(address, kind)
            supplier = outcome.supplier
            if supplier is not None and supplier >= 2:
                assert not bits[supplier - 1]
