"""Tests for the Sum MNM."""

import pytest
from hypothesis import given, strategies as st

from repro.core.smnm import (
    CHECKER_STRIDE,
    SMNM,
    SumChecker,
    checker_flipflops,
    max_sum,
    sum_hash,
)


class TestSumHash:
    def test_matches_paper_algorithm(self):
        # bit i (1-based) contributes i*i
        assert sum_hash(0b1, 4) == 1
        assert sum_hash(0b10, 4) == 4
        assert sum_hash(0b100, 4) == 9
        assert sum_hash(0b1011, 4) == 1 + 4 + 16

    def test_only_low_bits_counted(self):
        assert sum_hash(0b10000, 4) == 0

    def test_max_sum_formula(self):
        # Equation 3: w(w+1)(2w+1)/6 == sum of squares
        for width in range(1, 25):
            assert max_sum(width) == sum(i * i for i in range(1, width + 1))
            assert sum_hash((1 << width) - 1, width) == max_sum(width)

    def test_flipflop_count_includes_zero_sum(self):
        assert checker_flipflops(3) == max_sum(3) + 1

    @given(st.integers(min_value=0, max_value=(1 << 30) - 1),
           st.integers(min_value=1, max_value=24))
    def test_chunked_hash_equals_reference(self, value, width):
        checker = SumChecker(width, 0)
        assert checker._hash(value) == sum_hash(value, width)


class TestSumChecker:
    def test_unseen_sum_is_definite_miss(self):
        checker = SumChecker(8, 0)
        assert checker.is_definite_miss(0b101)

    def test_seen_sum_is_maybe(self):
        checker = SumChecker(8, 0)
        checker.on_place(0b101)
        assert not checker.is_definite_miss(0b101)

    def test_aliasing_values_share_flipflop(self):
        checker = SumChecker(8, 0)
        # bits 3 (9+... no): find two values with equal sums:
        # {bit3,bit4} -> 16+25=41 ; {bit... } use 0b11000 (16+25=41)
        # and verify same-hash value is not reported missing
        value_a = 0b11000          # sums 16+25=41
        checker.on_place(value_a)
        aliases = [v for v in range(256)
                   if sum_hash(v, 8) == sum_hash(value_a, 8) and v != value_a]
        assert aliases, "expected aliasing values in an 8-bit sum space"
        for alias in aliases:
            assert not checker.is_definite_miss(alias)

    def test_pure_hardware_never_unsets(self):
        checker = SumChecker(8, 0, counting=False)
        checker.on_place(0b1)
        checker.on_replace(0b1)
        assert not checker.is_definite_miss(0b1)  # flip-flop stays set

    def test_counting_variant_unsets(self):
        checker = SumChecker(8, 0, counting=True)
        checker.on_place(0b1)
        checker.on_replace(0b1)
        assert checker.is_definite_miss(0b1)

    def test_counting_respects_multiplicity(self):
        checker = SumChecker(8, 0, counting=True)
        checker.on_place(0b1)
        checker.on_place(0b1)
        checker.on_replace(0b1)
        assert not checker.is_definite_miss(0b1)

    def test_bit_offset_slices_address(self):
        checker = SumChecker(4, bit_offset=8)
        checker.on_place(0x300)       # bits 8..9 set
        assert not checker.is_definite_miss(0x300)
        assert not checker.is_definite_miss(0x3FF)  # same slice, low bits differ

    def test_reset(self):
        checker = SumChecker(8, 0)
        checker.on_place(0b1)
        checker.reset()
        assert checker.is_definite_miss(0b1)

    def test_validation(self):
        with pytest.raises(ValueError):
            SumChecker(0, 0)
        with pytest.raises(ValueError):
            SumChecker(4, -1)


class TestSMNM:
    def test_paper_naming(self):
        assert SMNM(13, 2).name == "SMNM_13x2"
        assert SMNM(10, 2, counting=True).name == "SMNM_10x2c"

    def test_default_offsets_follow_stride(self):
        smnm = SMNM(10, 3)
        assert [c.bit_offset for c in smnm.checkers] == [0, CHECKER_STRIDE,
                                                         2 * CHECKER_STRIDE]

    def test_any_checker_can_prove_miss(self):
        smnm = SMNM(10, 2)
        smnm.on_place(0b1)
        # an address equal in checker-0 slice but new in checker-1 slice
        probe = 0b1 | (0b111 << CHECKER_STRIDE + 4)
        if smnm.checkers[1].is_definite_miss(probe):
            assert smnm.is_definite_miss(probe)

    def test_placed_address_never_flagged(self):
        smnm = SMNM(12, 3)
        addresses = [0b1, 0xABC, 0xFFFFF, 0x12345]
        for address in addresses:
            smnm.on_place(address)
        for address in addresses:
            assert not smnm.is_definite_miss(address)

    def test_flush(self):
        smnm = SMNM(10, 2)
        smnm.on_place(0xAB)
        smnm.on_flush()
        assert smnm.is_definite_miss(0xAB)

    def test_storage_bits(self):
        smnm = SMNM(10, 2)
        assert smnm.storage_bits == 2 * (max_sum(10) + 1)
        counting = SMNM(10, 2, counting=True)
        assert counting.storage_bits > smnm.storage_bits

    def test_logic_estimates(self):
        smnm = SMNM(20, 3)
        assert smnm.logic_area_gates == 3 * 20 ** 4
        assert smnm.logic_gates < smnm.logic_area_gates

    def test_offsets_override(self):
        smnm = SMNM(8, 2, offsets=[0, 16])
        assert [c.bit_offset for c in smnm.checkers] == [0, 16]
        with pytest.raises(ValueError):
            SMNM(8, 2, offsets=[0])

    def test_degradation_over_time(self):
        """A non-counting SMNM's miss answers can only shrink as the sum
        space fills — the structural reason Figure 11 coverage is low."""
        smnm = SMNM(6, 1)
        space = max_sum(6) + 1
        flagged_before = sum(
            smnm.is_definite_miss(v) for v in range(space * 2)
        )
        for value in range(0, 64, 3):
            smnm.on_place(value)
        flagged_after = sum(
            smnm.is_definite_miss(v) for v in range(space * 2)
        )
        assert flagged_after <= flagged_before
