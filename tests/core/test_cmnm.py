"""Tests for the Common-Address MNM."""

import pytest

from repro.core.cmnm import CMNM, VirtualTagFinder


class TestVirtualTagFinder:
    def test_allocates_free_registers_exactly(self):
        finder = VirtualTagFinder(num_registers=2, high_bits=8)
        assert finder.place(0xAB) == 0
        assert finder.place(0xCD) == 1
        assert finder.matching(0xAB) == [0]
        assert finder.matching(0xCD) == [1]
        assert finder.matching(0xEF) == []

    def test_repeat_place_reuses_register(self):
        finder = VirtualTagFinder(2, 8)
        first = finder.place(0xAB)
        assert finder.place(0xAB) == first

    def test_widening_on_overflow(self):
        finder = VirtualTagFinder(1, 8)
        finder.place(0b10000000)
        index = finder.place(0b10000001)  # forces mask widening
        assert index == 0
        assert finder.registers[0].mask_len >= 1
        # both now match the widened register
        assert finder.matching(0b10000000) == [0]
        assert finder.matching(0b10000001) == [0]

    def test_losers_restore_masks(self):
        finder = VirtualTagFinder(2, 8)
        finder.place(0b00000000)   # register 0
        finder.place(0b11110000)   # register 1
        # widen: 0b00000001 is 1 bit from register 0, far from register 1
        winner = finder.place(0b00000001)
        assert winner == 0
        assert finder.registers[1].mask_len == 0  # loser restored

    def test_match_set_only_grows(self):
        """A high value that matched once keeps matching forever (the
        property CMNM soundness rests on)."""
        finder = VirtualTagFinder(2, 10)
        placed = []
        values = [0b0000000001, 0b0000000011, 0b1111100000, 0b0000000111,
                  0b1111100001, 0b0101010101]
        for value in values:
            finder.place(value)
            placed.append(value)
            for old in placed:
                assert finder.matching(old), f"{old:b} stopped matching"

    def test_values_never_change(self):
        finder = VirtualTagFinder(2, 8)
        finder.place(0xA0)
        finder.place(0xB0)
        original = [r.value for r in finder.registers]
        for value in (0xA1, 0xB3, 0xFF, 0x00):
            finder.place(value)
        assert [r.value for r in finder.registers] == original

    def test_full_mask_matches_everything(self):
        finder = VirtualTagFinder(1, 4)
        finder.place(0b0000)
        finder.place(0b1111)  # widen to full width
        assert finder.registers[0].mask_len >= 4
        for value in range(16):
            assert finder.matching(value) == [0]

    def test_reset(self):
        finder = VirtualTagFinder(2, 8)
        finder.place(0xAB)
        finder.reset()
        assert finder.matching(0xAB) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            VirtualTagFinder(0, 8)
        with pytest.raises(ValueError):
            VirtualTagFinder(2, 0)


class TestCMNM:
    def test_paper_naming(self):
        assert CMNM(8, 12).name == "CMNM_8_12"

    def test_unknown_region_is_definite_miss(self):
        cmnm = CMNM(4, 10, address_bits=27)
        assert cmnm.is_definite_miss(0x4000123)

    def test_placed_block_never_flagged(self):
        cmnm = CMNM(4, 10, address_bits=27)
        addresses = [0x123, 0x400123, 0x800123, 0xC00123, 0x1000123]
        for address in addresses:
            cmnm.on_place(address)
            assert not cmnm.is_definite_miss(address)
        for address in addresses:
            assert not cmnm.is_definite_miss(address)

    def test_same_region_different_low_bits(self):
        cmnm = CMNM(4, 10, address_bits=27)
        cmnm.on_place(0x123)
        # same high part, different low bits: counter slot is zero
        assert cmnm.is_definite_miss(0x124)

    def test_replace_restores_miss(self):
        cmnm = CMNM(4, 10, address_bits=27)
        cmnm.on_place(0x123)
        cmnm.on_replace(0x123)
        assert cmnm.is_definite_miss(0x123)

    def test_replace_of_unknown_block_is_noop(self):
        cmnm = CMNM(4, 10, address_bits=27)
        cmnm.on_replace(0x999)  # never placed: ignore, stay sound
        cmnm.on_place(0x999)
        assert not cmnm.is_definite_miss(0x999)

    def test_decrement_hits_placement_register(self):
        """The ledger guarantees replace decrements the same counter the
        place incremented, even after register masks widened."""
        cmnm = CMNM(2, 4, address_bits=12)
        # two blocks with the same low bits in different regions
        block_a = (0b00000001 << 4) | 0x5
        block_b = (0b11110000 << 4) | 0x5
        cmnm.on_place(block_a)
        cmnm.on_place(block_b)
        # force widening so both regions could alias
        for bump in range(2, 6):
            cmnm.on_place(((0b00000001 ^ (1 << bump)) << 4) | 0x5)
        cmnm.on_replace(block_a)
        # block_b must still be protected
        assert not cmnm.is_definite_miss(block_b)

    def test_lookup_conservative_across_matching_registers(self):
        """When several registers match, a miss needs all their counters
        to be zero."""
        cmnm = CMNM(2, 4, address_bits=10)
        cmnm.on_place(0b000001_0101)
        cmnm.on_place(0b100000_0101)
        # widen register 0 to cover more of the region space
        cmnm.on_place(0b000011_0101)
        probe = 0b000001_0101
        assert not cmnm.is_definite_miss(probe)

    def test_flush(self):
        cmnm = CMNM(4, 10, address_bits=27)
        cmnm.on_place(0x123)
        cmnm.on_flush()
        assert cmnm.is_definite_miss(0x123)
        cmnm.on_place(0x123)
        assert not cmnm.is_definite_miss(0x123)

    def test_storage_bits(self):
        cmnm = CMNM(8, 12, address_bits=27)
        assert cmnm.storage_bits > 8 * (1 << 12) * 3  # tables + finder

    def test_validation(self):
        with pytest.raises(ValueError):
            CMNM(4, 0)
        with pytest.raises(ValueError):
            CMNM(4, 10, address_bits=10)
