"""Tests for the composite (hybrid) and perfect filters."""

import pytest

from repro.core.base import NullFilter
from repro.core.hybrid import CompositeFilter
from repro.core.perfect import PerfectFilter
from repro.core.tmnm import TMNM


class TestCompositeFilter:
    def test_requires_components(self):
        with pytest.raises(ValueError):
            CompositeFilter([])

    def test_or_combination(self):
        a = TMNM(4, 1)
        b = TMNM(6, 1)
        combo = CompositeFilter([a, b])
        # only a knows about this address via table update
        a.on_place(0x3)
        # combo still flags because b has a zero counter
        assert combo.is_definite_miss(0x3)
        b.on_place(0x3)
        assert not combo.is_definite_miss(0x3)

    def test_events_fan_out(self):
        a = TMNM(4, 1)
        b = TMNM(6, 1)
        combo = CompositeFilter([a, b])
        combo.on_place(0x3)
        assert not a.is_definite_miss(0x3)
        assert not b.is_definite_miss(0x3)
        combo.on_replace(0x3)
        assert a.is_definite_miss(0x3)
        assert b.is_definite_miss(0x3)

    def test_flush_fans_out(self):
        a = TMNM(4, 1)
        combo = CompositeFilter([a, NullFilter()])
        combo.on_place(0x3)
        combo.on_flush()
        assert a.is_definite_miss(0x3)

    def test_storage_bits_sum(self):
        a = TMNM(4, 1)
        b = TMNM(6, 1)
        assert CompositeFilter([a, b]).storage_bits == (
            a.storage_bits + b.storage_bits
        )

    def test_name_joins_or_uses_label(self):
        a = TMNM(4, 1)
        b = TMNM(6, 1)
        assert CompositeFilter([a, b]).name == "TMNM_4x1+TMNM_6x1"
        assert CompositeFilter([a, b], label="HMNMx").name == "HMNMx"

    def test_identifying_components(self):
        a = TMNM(4, 1)
        b = TMNM(6, 1)
        combo = CompositeFilter([a, b])
        a.on_place(0x3)
        identifying = combo.identifying_components(0x3)
        assert identifying == [b]


class TestNullFilter:
    def test_never_identifies(self):
        null = NullFilter()
        null.on_place(1)
        null.on_replace(1)
        assert not null.is_definite_miss(1)
        assert null.storage_bits == 0
        assert null.name == "NULL"


class TestPerfectFilter:
    def test_tracks_residency_exactly(self):
        perfect = PerfectFilter()
        assert perfect.is_definite_miss(5)
        perfect.on_place(5)
        assert not perfect.is_definite_miss(5)
        perfect.on_replace(5)
        assert perfect.is_definite_miss(5)

    def test_replace_of_absent_is_noop(self):
        perfect = PerfectFilter()
        perfect.on_replace(5)
        assert perfect.is_definite_miss(5)

    def test_flush(self):
        perfect = PerfectFilter()
        perfect.on_place(5)
        perfect.on_flush()
        assert perfect.is_definite_miss(5)

    def test_resident_set_copy(self):
        perfect = PerfectFilter()
        perfect.on_place(5)
        resident = perfect.resident_granules
        resident.add(6)
        assert perfect.is_definite_miss(6)  # original unaffected

    def test_zero_hardware_budget(self):
        assert PerfectFilter().storage_bits == 0
        assert PerfectFilter().name == "PERFECT"
