"""Tests for the Replacements MNM."""

import pytest

from repro.core.rmnm import RMNMCache, RMNMLane


class TestRMNMCache:
    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            RMNMCache(100, 1, 1)  # not a power of two
        with pytest.raises(ValueError):
            RMNMCache(128, 3, 1)  # assoc does not divide blocks
        with pytest.raises(ValueError):
            RMNMCache(128, 1, 0)  # no lanes

    def test_name_matches_paper_convention(self):
        assert RMNMCache(512, 2, 5).name == "RMNM_512_2"

    def test_replace_then_place_clears(self):
        rmnm = RMNMCache(128, 1, 2)
        rmnm.record_replace(10, lane=0)
        assert rmnm.is_replaced(10, 0)
        assert not rmnm.is_replaced(10, 1)  # other lane untouched
        rmnm.record_place(10, lane=0)
        assert not rmnm.is_replaced(10, 0)

    def test_place_without_entry_is_noop(self):
        rmnm = RMNMCache(128, 1, 1)
        rmnm.record_place(10, 0)  # no entry exists
        assert not rmnm.is_replaced(10, 0)
        assert rmnm.occupancy == 0

    def test_lanes_share_one_entry(self):
        rmnm = RMNMCache(128, 1, 3)
        rmnm.record_replace(5, 0)
        rmnm.record_replace(5, 2)
        assert rmnm.occupancy == 1
        assert rmnm.is_replaced(5, 0)
        assert not rmnm.is_replaced(5, 1)
        assert rmnm.is_replaced(5, 2)

    def test_conflict_eviction_drops_information(self):
        rmnm = RMNMCache(4, 1, 1)  # 4 sets, direct-mapped
        rmnm.record_replace(0, 0)
        rmnm.record_replace(4, 0)  # same set -> evicts entry for 0
        assert not rmnm.is_replaced(0, 0)   # coverage lost, soundness kept
        assert rmnm.is_replaced(4, 0)

    def test_associativity_retains_conflicting_entries(self):
        rmnm = RMNMCache(8, 2, 1)  # 4 sets, 2-way
        rmnm.record_replace(0, 0)
        rmnm.record_replace(4, 0)
        assert rmnm.is_replaced(0, 0)
        assert rmnm.is_replaced(4, 0)

    def test_flush_lane_only_clears_that_lane(self):
        rmnm = RMNMCache(128, 1, 2)
        rmnm.record_replace(7, 0)
        rmnm.record_replace(7, 1)
        rmnm.flush_lane(0)
        assert not rmnm.is_replaced(7, 0)
        assert rmnm.is_replaced(7, 1)

    def test_flush_clears_everything(self):
        rmnm = RMNMCache(128, 2, 2)
        rmnm.record_replace(7, 0)
        rmnm.flush()
        assert rmnm.occupancy == 0
        assert not rmnm.is_replaced(7, 0)

    def test_storage_bits_scale_with_entries(self):
        small = RMNMCache(128, 1, 5)
        large = RMNMCache(4096, 8, 5)
        assert large.storage_bits > small.storage_bits


class TestRMNMLane:
    def test_lane_bounds(self):
        rmnm = RMNMCache(128, 1, 2)
        with pytest.raises(ValueError):
            RMNMLane(rmnm, 2)

    def test_lane_implements_filter_protocol(self):
        rmnm = RMNMCache(128, 1, 2)
        lane = RMNMLane(rmnm, 1)
        assert not lane.is_definite_miss(3)   # never seen: maybe
        lane.on_place(3)
        assert not lane.is_definite_miss(3)
        lane.on_replace(3)
        assert lane.is_definite_miss(3)
        lane.on_place(3)
        assert not lane.is_definite_miss(3)

    def test_cold_misses_invisible(self):
        """Section 3.1: cold misses cannot be captured by the RMNM."""
        lane = RMNMLane(RMNMCache(128, 1, 1), 0)
        assert not lane.is_definite_miss(999)

    def test_on_flush_clears_own_lane(self):
        rmnm = RMNMCache(128, 1, 2)
        lane0 = RMNMLane(rmnm, 0)
        lane1 = RMNMLane(rmnm, 1)
        lane0.on_replace(3)
        lane1.on_replace(3)
        lane0.on_flush()
        assert not lane0.is_definite_miss(3)
        assert lane1.is_definite_miss(3)

    def test_name_and_technique(self):
        lane = RMNMLane(RMNMCache(512, 2, 4), 2)
        assert lane.technique == "rmnm"
        assert "RMNM_512_2" in lane.name
