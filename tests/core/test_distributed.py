"""Tests for the distributed MNM placement (Section 2's third option)."""

import pytest

from repro.analysis.timing import AccessTimingModel
from repro.cache.cache import AccessKind
from repro.cache.hierarchy import AccessOutcome, CacheHierarchy
from repro.core.base import Placement
from repro.core.machine import MostlyNoMachine
from repro.core.presets import hmnm_design, perfect_design, tmnm_design
from repro.power.energy import EnergyAccountant, HierarchyEnergyModel
from repro.power.mnm_power import (
    machine_level_query_energies_nj,
    machine_query_energy_nj,
)
from tests.conftest import small_hierarchy_config

CONFIG = small_hierarchy_config(3)  # latencies 1/4/8, memory 100


def outcome(supplier):
    hits = [False, False, False]
    if supplier is not None:
        hits[supplier - 1] = True
    return AccessOutcome(address=0, kind=AccessKind.LOAD, hits=tuple(hits),
                         supplier=supplier)


class TestDistributedTiming:
    def setup_method(self):
        self.model = AccessTimingModel(
            CONFIG, placement=Placement.DISTRIBUTED, mnm_delay=2)

    def test_l1_hit_pays_nothing(self):
        assert self.model.latency(outcome(1), (False,) * 3) == 1

    def test_one_consult_per_reached_level(self):
        # supplier L2: consult once before L2 probe
        assert self.model.latency(outcome(2), (False,) * 3) == 1 + 2 + 4
        # supplier L3: consults before L2 and L3
        assert self.model.latency(outcome(3), (False,) * 3) == 1 + 2 + 4 + 2 + 8

    def test_memory_supply_consults_every_tracked_tier(self):
        assert self.model.latency(outcome(None), (False,) * 3) == (
            1 + 2 + 4 + 2 + 8 + 100
        )

    def test_bypass_saves_probe_but_not_consult(self):
        # L3 supplier with L2 bypassed: L2 consult still paid
        assert self.model.latency(outcome(3), (False, True, False)) == (
            1 + 2 + 2 + 8
        )

    def test_distributed_slower_than_serial(self):
        serial = AccessTimingModel(CONFIG, placement=Placement.SERIAL,
                                   mnm_delay=2)
        bits = (False, False, False)
        deep = outcome(None)
        assert (self.model.latency(deep, bits)
                > serial.latency(deep, bits))


class TestDistributedEnergy:
    def setup_method(self):
        self.energy_model = HierarchyEnergyModel(CONFIG)
        self.levels = (0.0, 0.3, 0.5)

    def accountant(self, placement):
        return EnergyAccountant(
            self.energy_model, placement=placement, mnm_query_nj=1.0,
            mnm_update_nj=0.0, mnm_level_query_nj=self.levels)

    def test_l1_hit_free(self):
        accountant = self.accountant(Placement.DISTRIBUTED)
        accountant.account(outcome(1), (False,) * 3)
        assert accountant.totals.mnm_nj == 0.0

    def test_only_reached_levels_pay(self):
        accountant = self.accountant(Placement.DISTRIBUTED)
        accountant.account(outcome(2), (False,) * 3)
        assert accountant.totals.mnm_nj == pytest.approx(0.3)
        accountant.account(outcome(None), (False,) * 3)
        assert accountant.totals.mnm_nj == pytest.approx(0.3 + 0.3 + 0.5)

    def test_distributed_cheapest_on_shallow_misses(self):
        serial = self.accountant(Placement.SERIAL)
        distributed = self.accountant(Placement.DISTRIBUTED)
        shallow = outcome(2)
        serial.account(shallow, (False,) * 3)
        distributed.account(shallow, (False,) * 3)
        assert distributed.totals.mnm_nj < serial.totals.mnm_nj


class TestLevelQueryEnergies:
    def test_tier1_always_zero(self):
        machine = MostlyNoMachine(CacheHierarchy(CONFIG), hmnm_design(2))
        energies = machine_level_query_energies_nj(machine)
        assert energies[0] == 0.0
        assert all(e > 0.0 for e in energies[1:])

    def test_sum_close_to_full_query(self):
        machine = MostlyNoMachine(CacheHierarchy(CONFIG), hmnm_design(2))
        energies = machine_level_query_energies_nj(machine)
        assert sum(energies) == pytest.approx(
            machine_query_energy_nj(machine), rel=1e-6)

    def test_perfect_free(self):
        machine = MostlyNoMachine(CacheHierarchy(CONFIG), perfect_design())
        assert machine_level_query_energies_nj(machine) == (0.0, 0.0, 0.0)

    def test_design_with_placement_distributed(self):
        design = tmnm_design(8, 1).with_placement(Placement.DISTRIBUTED)
        machine = MostlyNoMachine(CacheHierarchy(CONFIG), design)
        assert machine.placement is Placement.DISTRIBUTED
