"""Property-based soundness tests: the MNM's defining invariant.

Section 3.6 of the paper: "if the MNM indicates a miss, then the block
certainly does not exist in the cache".  Each test here drives a filter (or
a whole machine) with randomized streams and asserts a definite-miss answer
is never given for a resident block.  These are the most important tests in
the suite — a single violation means bypassing would return wrong data in
hardware.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.cache import AccessKind, Cache, CacheConfig
from repro.cache.hierarchy import CacheHierarchy
from repro.core.cmnm import CMNM
from repro.core.hybrid import CompositeFilter
from repro.core.machine import MostlyNoMachine
from repro.core.perfect import PerfectFilter
from repro.core.presets import (
    all_paper_design_names,
    parse_design,
)
from repro.core.rmnm import RMNMCache, RMNMLane
from repro.core.smnm import SMNM
from repro.core.tmnm import TMNM
from tests.conftest import random_references, small_hierarchy_config


def make_filters():
    """One instance of every technique, all watching the same cache."""
    rmnm = RMNMCache(64, 2, 1)
    return [
        RMNMLane(rmnm, 0),
        SMNM(8, 2),
        SMNM(8, 2, counting=True),
        TMNM(6, 2),
        CMNM(2, 5, address_bits=16),
        PerfectFilter(),
        CompositeFilter([TMNM(5, 1), CMNM(2, 4, address_bits=16),
                         SMNM(6, 1)]),
    ]


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=0x3FFF), min_size=10,
                max_size=400),
       st.randoms(use_true_random=False))
def test_filters_never_flag_resident_blocks(addresses, rnd):
    """Drive one small cache; every filter observes its event stream; no
    filter may ever flag a block the cache holds."""
    cache = Cache(CacheConfig(name="c", level=2, size_bytes=256,
                              associativity=2, block_size=16, hit_latency=1))
    filters = make_filters()
    for filter_ in filters:
        cache.add_place_listener(
            lambda c, blk, f=filter_: f.on_place(blk))
        cache.add_replace_listener(
            lambda c, blk, f=filter_: f.on_replace(blk))

    for address in addresses:
        blk = cache.block_addr(address)
        for filter_ in filters:
            if filter_.is_definite_miss(blk):
                assert not cache.contains_block(blk), (
                    f"{filter_.name} flagged resident block {blk:#x}"
                )
        if not cache.probe(address):
            cache.fill(address, dirty=rnd.random() < 0.3)

    # final state check over every resident block
    for blk in cache.resident_blocks():
        for filter_ in filters:
            assert not filter_.is_definite_miss(blk), filter_.name


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=0x3FFF), min_size=10,
                max_size=400))
def test_perfect_filter_is_exact(addresses):
    """The oracle must mirror the cache exactly in both directions."""
    cache = Cache(CacheConfig(name="c", level=2, size_bytes=256,
                              associativity=2, block_size=16, hit_latency=1))
    perfect = PerfectFilter()
    cache.add_place_listener(lambda c, blk: perfect.on_place(blk))
    cache.add_replace_listener(lambda c, blk: perfect.on_replace(blk))
    for address in addresses:
        if not cache.probe(address):
            cache.fill(address)
    assert perfect.resident_granules == set(cache.resident_blocks())


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=0x3FF),
                          st.booleans()),
                max_size=300),
       st.lists(st.integers(min_value=0, max_value=0x3FF), min_size=1,
                max_size=100))
def test_query_many_agrees_with_scalar_queries(events, queries):
    """``query_many`` is element-wise ``is_definite_miss``, and read-only.

    The fast engine answers whole replay segments through ``query_many``;
    its byte-identity to the interpreter rests exactly on this contract,
    for every filter family (RMNM lane, SMNM, counting SMNM, TMNM, CMNM,
    perfect, composite) and on the state mid-stream, not just after
    training.
    """
    for filter_ in make_filters():
        for granule, is_place in events:
            if is_place:
                filter_.on_place(granule)
            else:
                filter_.on_replace(granule)
        expected = [filter_.is_definite_miss(granule) for granule in queries]
        batched = filter_.query_many(queries)
        assert [bool(answer) for answer in batched] == expected, filter_.name
        # Read-only: a batched query must not have disturbed the state.
        after = [filter_.is_definite_miss(granule) for granule in queries]
        assert after == expected, filter_.name


@pytest.mark.parametrize("design_name", all_paper_design_names())
def test_machine_query_many_matches_query(design_name):
    """The machine-level batch (one row per reference) mirrors query()."""
    rng = random.Random(hash(design_name) & 0xFFF)
    hierarchy = CacheHierarchy(small_hierarchy_config(3))
    machine = MostlyNoMachine(hierarchy, parse_design(design_name))
    references = list(random_references(rng, 400, span=1 << 14))
    for address, kind in references[:200]:
        hierarchy.access(address, kind)
    addresses = [address for address, _kind in references]
    kinds = [kind for _address, kind in references]
    expected = [machine.query(address, kind)
                for address, kind in references]
    batched = machine.query_many(addresses, kinds)
    for row, bits in zip(batched, expected):
        assert tuple(bool(b) for b in row) == tuple(bits)


@pytest.mark.parametrize("design_name", all_paper_design_names())
def test_machine_soundness_for_every_paper_design(design_name):
    """End-to-end: every configuration in Figures 10-14 stays one-sided on
    a mixed random reference stream over a 3-tier hierarchy."""
    rng = random.Random(hash(design_name) & 0xFFFF)
    hierarchy = CacheHierarchy(small_hierarchy_config(3))
    machine = MostlyNoMachine(hierarchy, parse_design(design_name))
    for address, kind in random_references(rng, 3000, span=1 << 15):
        bits = machine.query(address, kind)
        outcome = hierarchy.access(address, kind)
        supplier = outcome.supplier
        if supplier is not None and supplier >= 2:
            assert not bits[supplier - 1], (
                f"{design_name} flagged the supplying tier {supplier} "
                f"for {address:#x}"
            )


def test_machine_soundness_with_flushes():
    """Flushing mid-stream must not create false miss answers."""
    rng = random.Random(99)
    hierarchy = CacheHierarchy(small_hierarchy_config(3))
    machine = MostlyNoMachine(hierarchy, parse_design("HMNM2"))
    for step, (address, kind) in enumerate(
        random_references(rng, 2000, span=1 << 14)
    ):
        if step % 500 == 499:
            hierarchy.flush()
            machine.flush()
        bits = machine.query(address, kind)
        outcome = hierarchy.access(address, kind)
        supplier = outcome.supplier
        if supplier is not None and supplier >= 2:
            assert not bits[supplier - 1]


def test_perfect_machine_identifies_every_candidate_miss():
    """The oracle bound: 100% coverage by construction."""
    rng = random.Random(7)
    hierarchy = CacheHierarchy(small_hierarchy_config(3))
    machine = MostlyNoMachine(hierarchy, parse_design("PERFECT"))
    candidates = identified = 0
    for address, kind in random_references(rng, 3000, span=1 << 15):
        bits = machine.query(address, kind)
        outcome = hierarchy.access(address, kind)
        for tier in range(2, outcome.tiers_missed + 1):
            candidates += 1
            identified += bits[tier - 1]
    assert candidates > 0
    assert identified == candidates
