"""Deeper property-based tests on core data structures (hypothesis)."""

import random

from hypothesis import given, settings, strategies as st

from repro.cache.cache import Cache, CacheConfig
from repro.core.cmnm import VirtualTagFinder
from repro.core.smnm import SumChecker, max_sum
from repro.core.tmnm import COUNTER_MAX, CounterTable, TMNM


addresses = st.lists(st.integers(min_value=0, max_value=(1 << 20) - 1),
                     min_size=1, max_size=200)


class TestCounterTableProperties:
    @settings(max_examples=40, deadline=None)
    @given(addresses)
    def test_exact_below_saturation(self, placed):
        """A never-saturated counter equals the live multiset count."""
        table = CounterTable(index_bits=8)
        live = {}
        for address in placed:
            table.on_place(address)
            live[address & 0xFF] = live.get(address & 0xFF, 0) + 1
        for slot_addr, count in live.items():
            observed = table.count(slot_addr)
            if count < COUNTER_MAX:
                assert observed == count
            else:
                assert observed == COUNTER_MAX

    @settings(max_examples=40, deadline=None)
    @given(addresses)
    def test_zero_only_when_slot_empty(self, placed):
        table = CounterTable(index_bits=8)
        for address in placed:
            table.on_place(address)
        for address in placed:
            assert not table.is_definite_miss(address)

    @settings(max_examples=30, deadline=None)
    @given(addresses, addresses)
    def test_wider_table_dominates_at_same_offset(self, placed, probes):
        """A 10-bit table's zero slot implies the 8-bit table could only
        have a zero-or-greater count — coverage dominance used by the
        benchmark assertions."""
        narrow = CounterTable(index_bits=8)
        wide = CounterTable(index_bits=10)
        for address in placed:
            narrow.on_place(address)
            wide.on_place(address)
        for probe in probes:
            if narrow.is_definite_miss(probe):
                assert wide.is_definite_miss(probe)

    @settings(max_examples=30, deadline=None)
    @given(addresses, addresses)
    def test_more_tables_dominate(self, placed, probes):
        """TMNM_8x3 flags everything TMNM_8x1 flags (same first table)."""
        one = TMNM(8, 1)
        three = TMNM(8, 3)
        for address in placed:
            one.on_place(address)
            three.on_place(address)
        for probe in probes:
            if one.is_definite_miss(probe):
                assert three.is_definite_miss(probe)


class TestVirtualTagFinderProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=(1 << 12) - 1),
                    min_size=1, max_size=80),
           st.integers(min_value=1, max_value=6))
    def test_placed_values_always_match_afterwards(self, values, registers):
        """The soundness keystone: once placed, a high value matches some
        register at every later point."""
        finder = VirtualTagFinder(registers, high_bits=12)
        placed = []
        for value in values:
            finder.place(value)
            placed.append(value)
            for old in placed:
                assert finder.matching(old), f"{old:#x} lost its match"

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=(1 << 12) - 1),
                    min_size=1, max_size=60))
    def test_masks_never_shrink_for_winner(self, values):
        finder = VirtualTagFinder(2, high_bits=12)
        previous = [0, 0]
        for value in values:
            winner = finder.place(value)
            current = [r.mask_len for r in finder.registers]
            assert current[winner] >= previous[winner]
            previous = current


class TestSumCheckerProperties:
    @settings(max_examples=40, deadline=None)
    @given(addresses, st.integers(min_value=2, max_value=20))
    def test_placed_never_flagged(self, placed, width):
        checker = SumChecker(width, 0)
        for address in placed:
            checker.on_place(address)
        for address in placed:
            assert not checker.is_definite_miss(address)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=1, max_value=24))
    def test_hash_range(self, width):
        checker = SumChecker(width, 0)
        top = (1 << width) - 1
        assert checker._hash(top) == max_sum(width)
        assert checker._hash(0) == 0


class TestLRUStackProperty:
    @settings(max_examples=25, deadline=None)
    @given(addresses)
    def test_bigger_fully_associative_lru_contains_smaller(self, stream):
        """The classic LRU inclusion property, which the 3C classifier's
        fully-associative model depends on."""
        small = Cache(CacheConfig(name="s", level=1, size_bytes=16 * 8,
                                  associativity=8, block_size=16,
                                  hit_latency=1))
        big = Cache(CacheConfig(name="b", level=1, size_bytes=16 * 16,
                                associativity=16, block_size=16,
                                hit_latency=1))
        for address in stream:
            for cache in (small, big):
                if not cache.probe(address):
                    cache.fill(address)
            for blk in small.resident_blocks():
                assert big.contains_block(blk)
