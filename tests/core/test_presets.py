"""Tests for the design catalogue and name parsing."""

import pytest

from repro.cache.hierarchy import CacheHierarchy
from repro.core.base import Placement
from repro.core.cmnm import CMNM
from repro.core.hybrid import CompositeFilter
from repro.core.machine import MostlyNoMachine
from repro.core.presets import (
    all_paper_design_names,
    cmnm_design,
    figure10_designs,
    figure11_designs,
    figure12_designs,
    figure13_designs,
    figure14_designs,
    figure15_designs,
    hmnm_design,
    null_design,
    parse_design,
    perfect_design,
    rmnm_design,
    smnm_design,
    tmnm_design,
)
from repro.core.smnm import SMNM
from repro.core.tmnm import TMNM
from tests.conftest import small_hierarchy_config


class TestParseDesign:
    @pytest.mark.parametrize("name", [
        "RMNM_128_1", "RMNM_4096_8", "SMNM_10x2", "SMNM_20x3", "TMNM_10x1",
        "TMNM_12x3", "CMNM_2_9", "CMNM_8_12", "HMNM1", "HMNM4", "PERFECT",
        "NONE",
    ])
    def test_round_trips_paper_names(self, name):
        design = parse_design(name)
        expected = {"NONE": "NONE"}.get(name, name)
        assert design.name == expected

    def test_case_insensitive(self):
        assert parse_design("hmnm2").name == "HMNM2"
        assert parse_design("tmnm_12x3").name == "TMNM_12x3"

    def test_counting_smnm_suffix(self):
        design = parse_design("SMNM_10x2c")
        assert design.name == "SMNM_10x2c"

    def test_rejects_unknown(self):
        with pytest.raises(ValueError, match="unrecognised"):
            parse_design("XMNM_1")
        with pytest.raises(ValueError):
            parse_design("HMNM9")

    def test_all_paper_names_parse(self):
        for name in all_paper_design_names():
            assert parse_design(name).name == name


class TestFigureLineups:
    def test_figure10_geometries(self):
        names = [d.name for d in figure10_designs()]
        assert names == ["RMNM_128_1", "RMNM_512_2", "RMNM_2048_4",
                         "RMNM_4096_8"]

    def test_figure11_configs(self):
        names = [d.name for d in figure11_designs()]
        assert names == ["SMNM_10x2", "SMNM_13x2", "SMNM_15x2", "SMNM_20x3"]

    def test_figure12_configs(self):
        names = [d.name for d in figure12_designs()]
        assert names == ["TMNM_10x1", "TMNM_11x2", "TMNM_10x3", "TMNM_12x3"]

    def test_figure13_configs(self):
        names = [d.name for d in figure13_designs()]
        assert names == ["CMNM_2_9", "CMNM_4_10", "CMNM_8_10", "CMNM_8_12"]

    def test_figure14_configs(self):
        names = [d.name for d in figure14_designs()]
        assert names == ["HMNM1", "HMNM2", "HMNM3", "HMNM4"]

    def test_figure15_lineup(self):
        names = [d.name for d in figure15_designs()]
        assert names == ["TMNM_12x3", "CMNM_8_10", "HMNM2", "HMNM4",
                         "PERFECT"]


class TestHMNMRecipes:
    """Table 3 of the paper."""

    @pytest.mark.parametrize("variant,rmnm", [
        (1, (128, 1)), (2, (512, 2)), (3, (2048, 4)), (4, (4096, 8)),
    ])
    def test_rmnm_geometry(self, variant, rmnm):
        assert hmnm_design(variant).rmnm_geometry == rmnm

    def test_level_recipes_build_expected_components(self):
        machine = MostlyNoMachine(
            CacheHierarchy(small_hierarchy_config(4)), hmnm_design(4)
        )
        low = machine.filter_for("ul2")
        assert isinstance(low, CompositeFilter)
        types_low = {type(c) for c in low.components}
        assert SMNM in types_low and TMNM in types_low
        high = machine.filter_for("ul4")
        types_high = {type(c) for c in high.components}
        assert CMNM in types_high and TMNM in types_high

    def test_invalid_variant(self):
        with pytest.raises(ValueError):
            hmnm_design(5)


class TestDesignBuilders:
    def test_null_design_is_inactive(self):
        design = null_design()
        assert not design.perfect
        assert design.rmnm_geometry is None
        assert not design.default_factories

    def test_perfect_flag(self):
        assert perfect_design().perfect

    def test_default_placement_parallel(self):
        for design in (rmnm_design(128, 1), smnm_design(10, 2),
                       tmnm_design(10, 1), cmnm_design(2, 9)):
            assert design.placement is Placement.PARALLEL
            assert design.delay == 2
