"""Tests for the MRU way-prediction baseline."""

import random

import pytest

from repro.cache.cache import CacheConfig
from repro.core.waypred import (
    MRUWayPredictor,
    WayPredictionMeter,
    WayPredictionStats,
)


def make_meter(assoc=4):
    return WayPredictionMeter(CacheConfig(
        name="l2", level=2, size_bytes=1024, associativity=assoc,
        block_size=32, hit_latency=4,
    ))


class TestMRUWayPredictor:
    def test_initial_prediction_is_way_zero(self):
        predictor = MRUWayPredictor(4, 2)
        assert predictor.predict(0) == 0

    def test_update_changes_prediction(self):
        predictor = MRUWayPredictor(4, 2)
        predictor.update(1, 1)
        assert predictor.predict(1) == 1
        assert predictor.predict(0) == 0  # other sets untouched

    def test_reset(self):
        predictor = MRUWayPredictor(4, 2)
        predictor.update(0, 1)
        predictor.reset()
        assert predictor.predict(0) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            MRUWayPredictor(0, 2)


class TestWayPredictionMeter:
    def test_rejects_direct_mapped(self):
        with pytest.raises(ValueError, match="set-associative"):
            WayPredictionMeter(CacheConfig(
                name="dm", level=1, size_bytes=1024, associativity=1,
                block_size=32, hit_latency=2,
            ))

    def test_repeated_access_predicts_perfectly(self):
        meter = make_meter()
        meter.access(0x1000)          # miss, trains predictor
        for _ in range(10):
            assert meter.access(0x1000)
        assert meter.stats.accuracy == 1.0

    def test_alternating_blocks_mispredict(self):
        meter = make_meter()
        # two blocks in the same set, alternating: MRU always wrong
        a, b = 0x1000, 0x1000 + 1024  # same set (8 sets * 32B span = 256)
        cache = meter.cache
        assert cache.set_index(cache.block_addr(a)) == cache.set_index(
            cache.block_addr(b))
        meter.access(a)
        meter.access(b)
        for _ in range(10):
            meter.access(a)
            meter.access(b)
        assert meter.stats.accuracy < 0.2

    def test_energy_ratio_below_one_on_hit_streams(self):
        meter = make_meter()
        for _ in range(50):
            meter.access(0x2000)
        assert meter.stats.read_energy_ratio < 0.5

    def test_energy_ratio_one_on_pure_misses(self):
        meter = make_meter()
        rng = random.Random(0)
        for _ in range(200):
            meter.access(rng.randrange(1 << 24) & ~7)
        # nearly all misses: no saving possible
        assert meter.stats.read_energy_ratio > 0.9

    def test_stats_consistency(self):
        meter = make_meter()
        rng = random.Random(1)
        for _ in range(500):
            meter.access(rng.randrange(1 << 13) & ~7)
        stats = meter.stats
        assert stats.correct <= stats.hits <= stats.probes
        assert stats.ways_read <= stats.ways_read_baseline + stats.probes

    def test_reset(self):
        meter = make_meter()
        meter.access(0x1000)
        meter.reset()
        assert meter.stats.probes == 0
        assert not meter.access(0x1000)  # cold again

    def test_empty_stats(self):
        stats = WayPredictionStats()
        assert stats.accuracy == 0.0
        assert stats.read_energy_ratio == 1.0
