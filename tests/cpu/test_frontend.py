"""Additional core-model tests: frontend behaviour and timing precision."""

import pytest

from repro.cpu.branch import PerfectPredictor, StaticTakenPredictor
from repro.cpu.core import CoreConfig, DEFAULT_UNITS_8WAY, OutOfOrderCore, paper_core
from repro.cpu.isa import Instruction, OpClass
from repro.cpu.memory import FixedLatencyMemory


def ialu(pc, dest=-1, src1=-1):
    return Instruction(op=OpClass.IALU, pc=pc, dest=dest, src1=src1)


def straight_line(count, base=0x1000):
    return [ialu(base + 4 * i) for i in range(count)]


def custom_core(**overrides):
    base = dict(name="custom", width=8, ruu_size=128, lsq_size=64,
                units=dict(DEFAULT_UNITS_8WAY))
    base.update(overrides)
    return CoreConfig(**base)


class _MissyICache(FixedLatencyMemory):
    """Reports a 2-cycle pipelined L1I but serves fetches slower — i.e.
    every line misses L1I (the stall path the real memory produces)."""

    def __init__(self, fetch_latency):
        super().__init__(instruction_latency=2, data_latency=2)
        self._fetch_latency = fetch_latency

    def access(self, address, kind):
        latency = super().access(address, kind)
        from repro.cache.cache import AccessKind

        if kind is AccessKind.INSTRUCTION:
            return self._fetch_latency
        return latency


class TestFrontend:
    def test_icache_stall_beyond_l1_latency(self):
        """Lines costing more than the pipelined L1I latency stall fetch."""
        fast, _ = self._run(_MissyICache(2))
        slow, _ = self._run(_MissyICache(12))
        # 125 lines at +10 extra cycles each, partly overlapped with the
        # fetch group advancing within a stalled line
        assert slow.cycles >= fast.cycles + 125 * 8

    @staticmethod
    def _run(memory):
        core = OutOfOrderCore(paper_core(8), memory, PerfectPredictor())
        return core.run(straight_line(1000)), memory

    def test_frontend_depth_shifts_total(self):
        shallow_core = OutOfOrderCore(custom_core(frontend_depth=1),
                                      FixedLatencyMemory(2, 2),
                                      PerfectPredictor())
        deep_core = OutOfOrderCore(custom_core(frontend_depth=12),
                                   FixedLatencyMemory(2, 2),
                                   PerfectPredictor())
        insts = straight_line(200)
        shallow = shallow_core.run(insts)
        deep = deep_core.run(insts)
        # depth adds a constant pipeline fill, not a per-instruction cost
        assert deep.cycles - shallow.cycles == pytest.approx(11, abs=3)

    def test_mispredict_penalty_scales(self):
        alternating = [
            Instruction(op=OpClass.BRANCH, pc=0x1000, taken=i % 2 == 0,
                        target=0x1000)
            for i in range(400)
        ]
        def cycles(penalty):
            core = OutOfOrderCore(custom_core(mispredict_penalty=penalty),
                                  FixedLatencyMemory(2, 2),
                                  StaticTakenPredictor())
            return core.run(alternating).cycles

        assert cycles(10) > cycles(1) + 200 * 5  # 200 mispredicts

    def test_taken_branch_refetches_line(self):
        """Each taken branch starts a new fetch line (icache access)."""
        loop = []
        for iteration in range(50):
            loop.append(ialu(0x1000))
            loop.append(Instruction(op=OpClass.BRANCH, pc=0x1004,
                                    taken=iteration != 49, target=0x1000))
        memory = FixedLatencyMemory(2, 2)
        core = OutOfOrderCore(paper_core(8), memory, PerfectPredictor())
        result = core.run(loop)
        # one access per iteration (line re-entered after the taken branch)
        assert memory.instruction_accesses == 50
        assert result.fetch_lines == 50


class TestCommitBandwidth:
    def test_commit_width_bounds_throughput(self):
        insts = straight_line(4000)
        wide = OutOfOrderCore(custom_core(width=8),
                              FixedLatencyMemory(2, 2), PerfectPredictor())
        narrow = OutOfOrderCore(
            custom_core(width=2, ruu_size=64, lsq_size=32),
            FixedLatencyMemory(2, 2), PerfectPredictor())
        assert narrow.run(insts).cycles > wide.run(insts).cycles * 3

    def test_cycles_monotone_in_trace_length(self):
        core_config = custom_core()
        def cycles(n):
            core = OutOfOrderCore(core_config, FixedLatencyMemory(2, 2),
                                  PerfectPredictor())
            return core.run(straight_line(n)).cycles
        values = [cycles(n) for n in (100, 500, 2000)]
        assert values == sorted(values)
