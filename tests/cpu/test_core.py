"""Tests for the out-of-order core timing model."""

import pytest

from repro.cpu.branch import PerfectPredictor, StaticTakenPredictor
from repro.cpu.core import CoreConfig, OutOfOrderCore, paper_core
from repro.cpu.isa import Instruction, OpClass
from repro.cpu.memory import FixedLatencyMemory


def ialu(i, dest=-1, src1=-1, src2=-1, pc=None):
    return Instruction(op=OpClass.IALU, pc=pc if pc is not None else 0x1000 + 4 * (i % 8),
                       dest=dest, src1=src1, src2=src2)


def run_core(instructions, width=8, data_latency=2, predictor=None):
    memory = FixedLatencyMemory(2, data_latency)
    core = OutOfOrderCore(paper_core(width), memory,
                          predictor or PerfectPredictor())
    return core.run(instructions), memory


class TestPaperCores:
    def test_eight_way_resources(self):
        config = paper_core(8)
        assert config.width == 8
        assert config.ruu_size == 128
        assert config.lsq_size == 64

    def test_four_way_is_half(self):
        config = paper_core(4)
        assert config.width == 4
        assert config.ruu_size == 64
        assert config.lsq_size == 32

    def test_other_widths_rejected(self):
        with pytest.raises(ValueError):
            paper_core(2)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CoreConfig(name="bad", width=0, ruu_size=8, lsq_size=8, units={})


class TestThroughput:
    def test_independent_alu_achieves_width(self):
        result, _ = run_core([ialu(i) for i in range(8000)])
        assert result.ipc > 6.0  # near the 8-wide limit

    def test_narrow_machine_halves_throughput(self):
        wide, _ = run_core([ialu(i) for i in range(4000)], width=8)
        narrow, _ = run_core([ialu(i) for i in range(4000)], width=4)
        assert narrow.cycles > wide.cycles * 1.7

    def test_dependence_chain_serialises(self):
        chain = [ialu(i, dest=8, src1=8) for i in range(2000)]
        result, _ = run_core(chain)
        assert result.cycles >= 2000  # one per cycle at best

    def test_fmul_latency_on_chain(self):
        chain = [Instruction(op=OpClass.FMUL, pc=0x1000, dest=8, src1=8)
                 for _ in range(500)]
        result, _ = run_core(chain)
        assert result.cycles >= 500 * 4  # 4-cycle FMUL chained


class TestMemoryBehaviour:
    def test_independent_loads_overlap(self):
        loads = [Instruction(op=OpClass.LOAD, pc=0x1000, dest=8 + (i % 16),
                             addr=0x2000) for i in range(1000)]
        result, _ = run_core(loads, data_latency=30)
        # 4 load ports, fully overlapped: far below serial 30-cycle each
        assert result.cycles < 1000 * 30 / 4

    def test_dependent_loads_serialise(self):
        loads = [Instruction(op=OpClass.LOAD, pc=0x1000, dest=8, src1=8,
                             addr=0x2000) for i in range(500)]
        result, _ = run_core(loads, data_latency=30)
        assert result.cycles >= 500 * 30

    def test_memory_latency_matters(self):
        loads = [Instruction(op=OpClass.LOAD, pc=0x1000, dest=8, src1=8,
                             addr=0x2000) for i in range(200)]
        fast, _ = run_core(loads, data_latency=2)
        slow, _ = run_core(loads, data_latency=50)
        assert slow.cycles > fast.cycles * 10

    def test_stores_do_not_block(self):
        stores = [Instruction(op=OpClass.STORE, pc=0x1000, src1=1, src2=2,
                              addr=0x2000) for _ in range(1000)]
        result, _ = run_core(stores, data_latency=100)
        assert result.cycles < 2000  # store latency hidden by store buffer

    def test_icache_access_per_line(self):
        # 8 instructions per 32B line: one icache access per line
        insts = [ialu(i, pc=0x1000 + 4 * i) for i in range(800)]
        result, memory = run_core(insts)
        assert memory.instruction_accesses == 100
        assert result.fetch_lines == 100

    def test_load_store_counts(self):
        insts = [
            Instruction(op=OpClass.LOAD, pc=0x1000, dest=8, addr=0x2000),
            Instruction(op=OpClass.STORE, pc=0x1004, src1=8, addr=0x2000),
            ialu(0, pc=0x1008),
        ] * 50
        result, _ = run_core(insts)
        assert result.loads == 50
        assert result.stores == 50


class TestBranches:
    @staticmethod
    def loop_trace(iterations, body=8):
        insts = []
        for iteration in range(iterations):
            for slot in range(body - 1):
                insts.append(ialu(slot, pc=0x1000 + 4 * slot))
            insts.append(Instruction(
                op=OpClass.BRANCH, pc=0x1000 + 4 * (body - 1),
                taken=iteration != iterations - 1, target=0x1000))
        return insts

    def test_mispredicts_cost_cycles(self):
        trace = self.loop_trace(400)
        good, _ = run_core(trace, predictor=PerfectPredictor())
        # static taken mispredicts the loop exit only; force worse with an
        # anti-pattern: alternate taken/not-taken branches
        alternating = []
        for i in range(1000):
            alternating.append(Instruction(
                op=OpClass.BRANCH, pc=0x1000, taken=i % 2 == 0,
                target=0x1000))
        perfect, _ = run_core(alternating, predictor=PerfectPredictor())
        static, _ = run_core(alternating, predictor=StaticTakenPredictor())
        assert static.cycles > perfect.cycles
        assert static.mispredicts == 500

    def test_mispredict_rate_reported(self):
        alternating = [Instruction(op=OpClass.BRANCH, pc=0x1000,
                                   taken=i % 2 == 0, target=0x1000)
                       for i in range(100)]
        result, _ = run_core(alternating, predictor=StaticTakenPredictor())
        assert result.mispredict_rate == pytest.approx(0.5)

    def test_branch_counts(self):
        result, _ = run_core(self.loop_trace(100))
        assert result.branches == 100


class TestWarmup:
    def test_warmup_excludes_leading_cycles(self):
        insts = [ialu(i) for i in range(2000)]
        full, _ = run_core(insts)
        core = OutOfOrderCore(paper_core(8), FixedLatencyMemory(2, 2),
                              PerfectPredictor())
        tail = core.run(insts, warmup=1000)
        assert tail.instructions == 1000
        assert 0 < tail.cycles < full.cycles

    def test_warmup_callback_fires_once(self):
        calls = []
        core = OutOfOrderCore(paper_core(8), FixedLatencyMemory(2, 2),
                              PerfectPredictor())
        core.run([ialu(i) for i in range(100)], warmup=50,
                 on_warmup_end=lambda: calls.append(1))
        assert calls == [1]

    def test_zero_warmup_no_callback(self):
        calls = []
        core = OutOfOrderCore(paper_core(8), FixedLatencyMemory(2, 2),
                              PerfectPredictor())
        core.run([ialu(i) for i in range(100)], warmup=0,
                 on_warmup_end=lambda: calls.append(1))
        assert calls == []


class TestWindowLimits:
    def test_small_window_limits_overlap(self):
        """With RUU=width the machine is effectively in-order: a long load
        stalls everything behind it."""
        insts = []
        for i in range(200):
            insts.append(Instruction(op=OpClass.LOAD, pc=0x1000,
                                     dest=8 + i % 8, addr=0x2000))
            insts.extend(ialu(j, pc=0x1004 + 4 * j) for j in range(7))
        big = paper_core(8)
        tiny = CoreConfig(name="tiny", width=8, ruu_size=8, lsq_size=4,
                          units=big.units)
        wide_core = OutOfOrderCore(big, FixedLatencyMemory(2, 40),
                                   PerfectPredictor())
        tiny_core = OutOfOrderCore(tiny, FixedLatencyMemory(2, 40),
                                   PerfectPredictor())
        wide = wide_core.run(insts)
        small = tiny_core.run(insts)
        assert small.cycles > wide.cycles
