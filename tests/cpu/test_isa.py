"""Tests for instruction records."""

import pytest

from repro.cpu.isa import NUM_REGISTERS, Instruction, OpClass


class TestOpClass:
    def test_memory_classification(self):
        assert OpClass.LOAD.is_memory
        assert OpClass.STORE.is_memory
        for op in (OpClass.IALU, OpClass.FMUL, OpClass.BRANCH):
            assert not op.is_memory


class TestInstruction:
    def test_defaults(self):
        inst = Instruction(op=OpClass.IALU, pc=0x1000)
        assert inst.dest == -1
        assert inst.src1 == -1
        assert inst.addr == -1
        assert not inst.taken

    def test_memory_ops_require_address(self):
        with pytest.raises(ValueError):
            Instruction(op=OpClass.LOAD, pc=0x1000)
        with pytest.raises(ValueError):
            Instruction(op=OpClass.STORE, pc=0x1000)
        Instruction(op=OpClass.LOAD, pc=0x1000, addr=0x2000)  # fine

    def test_register_bounds(self):
        with pytest.raises(ValueError):
            Instruction(op=OpClass.IALU, pc=0, dest=NUM_REGISTERS)
        Instruction(op=OpClass.IALU, pc=0, dest=NUM_REGISTERS - 1)

    def test_frozen(self):
        inst = Instruction(op=OpClass.IALU, pc=0x1000)
        with pytest.raises(AttributeError):
            inst.pc = 0x2000  # type: ignore[misc]
