"""Tests for the memory-system interface pieces."""

import pytest

from repro.cache.cache import AccessKind
from repro.cpu.memory import AccessTiming, FixedLatencyMemory


class TestAccessTiming:
    def test_valid(self):
        assert AccessTiming(latency=3).latency == 3

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            AccessTiming(latency=0)


class TestFixedLatencyMemory:
    def test_latencies_by_kind(self):
        memory = FixedLatencyMemory(instruction_latency=2, data_latency=7)
        assert memory.access(0x1000, AccessKind.INSTRUCTION) == 2
        assert memory.access(0x1000, AccessKind.LOAD) == 7
        assert memory.access(0x1000, AccessKind.STORE) == 7

    def test_counters(self):
        memory = FixedLatencyMemory()
        memory.access(0, AccessKind.INSTRUCTION)
        memory.access(0, AccessKind.LOAD)
        memory.access(0, AccessKind.STORE)
        assert memory.instruction_accesses == 1
        assert memory.data_accesses == 2

    def test_interface_properties(self):
        memory = FixedLatencyMemory(block_size=64)
        assert memory.fetch_block_size == 64
        assert memory.l1_instruction_latency == memory.instruction_latency
