"""Tests for the MSHR (outstanding-miss) limit in the core model."""

from repro.cpu.branch import PerfectPredictor
from repro.cpu.core import CoreConfig, DEFAULT_UNITS_8WAY, OutOfOrderCore, paper_core
from repro.cpu.isa import Instruction, OpClass
from repro.cpu.memory import FixedLatencyMemory


def independent_loads(count, latency_addr=0x2000):
    return [
        Instruction(op=OpClass.LOAD, pc=0x1000, dest=8 + (i % 24),
                    addr=latency_addr)
        for i in range(count)
    ]


def core_with_mshrs(mshr_count):
    base = paper_core(8)
    config = CoreConfig(
        name=f"mshr{mshr_count}", width=8, ruu_size=128, lsq_size=64,
        units=dict(DEFAULT_UNITS_8WAY), mshr_count=mshr_count,
    )
    return config


def run(mshr_count, data_latency=40, count=400):
    memory = FixedLatencyMemory(2, data_latency)
    core = OutOfOrderCore(core_with_mshrs(mshr_count), memory,
                          PerfectPredictor())
    return core.run(independent_loads(count)).cycles


class TestMSHRLimit:
    def test_fewer_mshrs_serialise_misses(self):
        unlimited = run(mshr_count=0)
        plenty = run(mshr_count=64)
        scarce = run(mshr_count=2)
        assert scarce > plenty
        assert plenty <= unlimited * 1.1

    def test_two_mshrs_bound_throughput(self):
        """400 loads of latency 40 through 2 MSHRs need >= 400*40/2 cycles."""
        cycles = run(mshr_count=2, data_latency=40, count=400)
        assert cycles >= 400 * 40 / 2

    def test_l1_hits_bypass_mshrs(self):
        """Loads at the L1 latency never occupy MSHRs."""
        fast = run(mshr_count=1, data_latency=2, count=400)
        assert fast < 400 * 2  # fully pipelined despite a single MSHR

    def test_zero_disables_limit(self):
        assert run(mshr_count=0) == run(mshr_count=10_000)

    def test_paper_core_default_is_bounded(self):
        assert paper_core(8).mshr_count > 0
