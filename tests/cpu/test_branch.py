"""Tests for branch predictors."""

import pytest

from repro.cpu.branch import (
    BimodalPredictor,
    GSharePredictor,
    StaticTakenPredictor,
)


class TestStaticTaken:
    def test_always_taken(self):
        predictor = StaticTakenPredictor()
        assert predictor.predict(0x1000)
        predictor.update(0x1000, False)
        assert predictor.predict(0x1000)


class TestBimodal:
    def test_initial_weakly_taken(self):
        assert BimodalPredictor().predict(0x1000)

    def test_learns_not_taken(self):
        predictor = BimodalPredictor()
        predictor.update(0x1000, False)
        predictor.update(0x1000, False)
        assert not predictor.predict(0x1000)

    def test_hysteresis(self):
        predictor = BimodalPredictor()
        for _ in range(10):
            predictor.update(0x1000, True)   # saturate taken
        predictor.update(0x1000, False)      # single flip
        assert predictor.predict(0x1000)     # still predicts taken

    def test_different_pcs_independent(self):
        predictor = BimodalPredictor()
        predictor.update(0x1000, False)
        predictor.update(0x1000, False)
        assert predictor.predict(0x1000 + 4 * predictor.table_size // 2)

    def test_aliasing_pcs_share_counter(self):
        predictor = BimodalPredictor(table_size=16)
        alias = 0x1000 + 16 * 4
        predictor.update(0x1000, False)
        predictor.update(0x1000, False)
        assert not predictor.predict(alias)

    def test_reset(self):
        predictor = BimodalPredictor()
        predictor.update(0x1000, False)
        predictor.update(0x1000, False)
        predictor.reset()
        assert predictor.predict(0x1000)

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            BimodalPredictor(table_size=100)

    def test_loop_accuracy(self):
        """A loop branch (N-1 taken, 1 not) should be predicted well."""
        predictor = BimodalPredictor()
        correct = total = 0
        for _ in range(50):
            for iteration in range(10):
                taken = iteration != 9
                correct += predictor.predict(0x4000) == taken
                total += 1
                predictor.update(0x4000, taken)
        assert correct / total > 0.85


class TestGShare:
    def test_learns_history_patterns(self):
        """gshare learns an alternating pattern bimodal cannot."""
        gshare = GSharePredictor(table_bits=10, history_bits=8)
        outcome = True
        for _ in range(200):  # train alternating T/N
            gshare.update(0x1000, outcome)
            outcome = not outcome
        correct = 0
        for _ in range(100):
            correct += gshare.predict(0x1000) == outcome
            gshare.update(0x1000, outcome)
            outcome = not outcome
        assert correct > 90

    def test_reset(self):
        gshare = GSharePredictor()
        gshare.update(0x1000, False)
        gshare.reset()
        assert gshare.predict(0x1000)

    def test_validation(self):
        with pytest.raises(ValueError):
            GSharePredictor(table_bits=0)
        with pytest.raises(ValueError):
            GSharePredictor(history_bits=-1)
