"""Metric extraction and tolerance checks behind ``obs regress``."""

from __future__ import annotations

import json

import pytest

from repro.obs.regress import (
    BASELINE_SCHEMA,
    candidate_name,
    check_regressions,
    extract_metrics,
    load_baseline,
)


def _manifest_doc():
    return {
        "schema": "repro-run-manifest/v1",
        "command": "report",
        "spans": [
            {"id": 0, "parent": None, "name": "a", "start": 0.0, "end": 2.5},
            {"id": 1, "parent": 0, "name": "b", "start": 0.1, "end": 3.0,
             "remote": True},           # worker clock: not wall time
            {"id": 2, "parent": 0, "name": "c", "start": 0.2, "end": None},
        ],
        "tasks": [
            {"task_id": "aaa", "attempt": 1, "worker": "pool"},
            {"task_id": "bbb", "attempt": 2, "worker": "serial"},
            {"task_id": "ccc", "attempt": 0, "worker": "resumed"},
        ],
        "metrics": {"counters": {"pass.references": 1000}},
    }


class TestExtractMetrics:
    def test_manifest_metrics(self):
        metrics = extract_metrics(_manifest_doc())
        assert metrics["wall_seconds"] == 2.5  # remote/open spans excluded
        assert metrics["counters.pass.references"] == 1000
        assert metrics["tasks.executed"] == 2  # resumed not counted
        assert metrics["tasks.retried"] == 1

    def test_bench_envelope_metrics(self):
        metrics = extract_metrics({
            "schema": "repro-bench/v1",
            "created_by": "bench_parallel_report",
            "metrics": {"seconds.serial_cold": 68.2, "flag": True},
            "notes": "ignored",
        })
        assert metrics == {"seconds.serial_cold": 68.2}  # bools excluded

    def test_legacy_bench_flattens_numeric_scalars(self):
        metrics = extract_metrics({
            "benchmark": "legacy",
            "seconds": {"serial_cold": 68.24, "parallel_cold": 80.67},
            "cpus": 1,
            "reports_byte_identical": True,
        })
        assert metrics["seconds.serial_cold"] == 68.24
        assert metrics["cpus"] == 1
        assert "reports_byte_identical" not in metrics

    def test_candidate_name_per_shape(self):
        assert candidate_name(_manifest_doc()) == "report"
        assert candidate_name({"schema": "repro-bench/v1",
                               "created_by": "profile"}) == "profile"
        assert candidate_name({"legacy": 1}) is None


class TestCheckRegressions:
    def _baseline(self, metrics):
        return {"schema": BASELINE_SCHEMA, "name": "report",
                "metrics": metrics}

    def test_max_ratio_gate(self):
        baseline = self._baseline(
            {"wall_seconds": {"value": 10.0, "max_ratio": 2.0}})
        ok = check_regressions({"wall_seconds": 19.0}, baseline)
        bad = check_regressions({"wall_seconds": 21.0}, baseline)
        assert ok[0]["ok"] and not bad[0]["ok"]
        assert bad[0]["kind"] == "max"

    def test_min_ratio_gate_catches_collapsed_work(self):
        baseline = self._baseline(
            {"counters.pass.references": {"value": 1000, "min_ratio": 0.5}})
        assert check_regressions(
            {"counters.pass.references": 400}, baseline)[0]["ok"] is False
        assert check_regressions(
            {"counters.pass.references": 600}, baseline)[0]["ok"] is True

    def test_bare_number_uses_default_max_ratio(self):
        baseline = self._baseline({"wall_seconds": 10.0})
        findings = check_regressions({"wall_seconds": 25.0}, baseline,
                                     default_max_ratio=2.0)
        assert findings[0]["limit"] == 20.0
        assert not findings[0]["ok"]

    def test_missing_metric_is_a_regression(self):
        baseline = self._baseline({"wall_seconds": 10.0})
        findings = check_regressions({}, baseline)
        assert findings[0]["kind"] == "missing"
        assert not findings[0]["ok"]

    def test_candidate_only_metrics_are_ignored(self):
        baseline = self._baseline({"wall_seconds": 10.0})
        findings = check_regressions(
            {"wall_seconds": 10.0, "extra.metric": 99.0}, baseline)
        assert len(findings) == 1


class TestLoadBaseline:
    def test_loads_file_and_validates_schema(self, tmp_path):
        good = tmp_path / "report.json"
        good.write_text(json.dumps({"schema": BASELINE_SCHEMA,
                                    "name": "report", "metrics": {}}))
        assert load_baseline(str(good))["name"] == "report"
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"name": "report", "metrics": {}}))
        with pytest.raises(ValueError):
            load_baseline(str(bad))

    def test_directory_resolution_matches_by_name(self, tmp_path):
        for name in ("report", "profile"):
            (tmp_path / f"{name}.json").write_text(json.dumps(
                {"schema": BASELINE_SCHEMA, "name": name, "metrics": {}}))
        assert load_baseline(str(tmp_path), name="profile")["name"] == \
            "profile"
        with pytest.raises(LookupError):
            load_baseline(str(tmp_path), name="unknown")
