"""Run-manifest assembly, atomic persistence and schema validation."""

from __future__ import annotations

import json

import pytest

from repro.experiments.base import ExperimentSettings
from repro.obs.manifest import (
    MANIFEST_NAME,
    MANIFEST_SCHEMA,
    build_manifest,
    config_fingerprint,
    load_manifest,
    write_manifest,
)

SETTINGS = ExperimentSettings(num_instructions=4000, workloads=("twolf",),
                              warmup_fraction=0.25)

EMPTY_SPANS = {"schema": "repro-spans/v1", "spans": [], "events": [],
               "tasks": []}
EMPTY_METRICS = {"counters": {}, "gauges": {}, "histograms": {}}


def _manifest(**overrides):
    kwargs = dict(command="report", settings=SETTINGS, status="ok",
                  spans_snapshot=EMPTY_SPANS,
                  metrics_snapshot=EMPTY_METRICS,
                  designs=["RMNM_4096_8"], jobs=2)
    kwargs.update(overrides)
    return build_manifest(**kwargs)


class TestFingerprint:
    def test_same_inputs_same_fingerprint(self):
        a = config_fingerprint("report", SETTINGS, ["RMNM_4096_8"])
        b = config_fingerprint("report", SETTINGS, ["RMNM_4096_8"])
        assert a == b

    def test_design_order_does_not_matter(self):
        a = config_fingerprint("report", SETTINGS, ["a", "b"])
        b = config_fingerprint("report", SETTINGS, ["b", "a"])
        assert a == b

    def test_settings_change_changes_fingerprint(self):
        other = ExperimentSettings(num_instructions=8000,
                                   workloads=("twolf",),
                                   warmup_fraction=0.25)
        assert (config_fingerprint("report", SETTINGS, ["a"])
                != config_fingerprint("report", other, ["a"]))


class TestBuildManifest:
    def test_shape_and_schema(self):
        manifest = _manifest()
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["command"] == "report"
        assert manifest["status"] == "ok"
        assert manifest["settings"]["instructions"] == 4000
        assert manifest["designs"] == ["RMNM_4096_8"]
        assert manifest["jobs"] == 2
        assert manifest["environment"]["cpus"] >= 1

    def test_no_wall_clock_timestamps(self):
        # R001: manifests are identified by fingerprint, not time of day.
        flat = json.dumps(_manifest())
        for key in ("timestamp", "created_at", "date"):
            assert key not in flat

    def test_designs_default_to_paper_lineup(self):
        from repro.core.presets import all_paper_design_names

        manifest = _manifest(designs=None)
        assert manifest["designs"] == list(all_paper_design_names())


class TestPersistence:
    def test_write_then_load_round_trips(self, tmp_path):
        run_dir = tmp_path / "run"
        path = write_manifest(str(run_dir), _manifest())
        assert path.endswith(MANIFEST_NAME)
        loaded = load_manifest(str(run_dir))       # by directory
        assert loaded == load_manifest(path)       # and by file
        assert loaded["fingerprint"] == _manifest()["fingerprint"]

    def test_write_leaves_no_temp_files(self, tmp_path):
        write_manifest(str(tmp_path), _manifest())
        assert [p.name for p in tmp_path.iterdir()] == [MANIFEST_NAME]

    def test_load_rejects_unknown_schema(self, tmp_path):
        bad = tmp_path / MANIFEST_NAME
        bad.write_text(json.dumps({"schema": "other/v1"}))
        with pytest.raises(ValueError, match="unknown manifest schema"):
            load_manifest(str(tmp_path))

    def test_load_missing_path_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_manifest(str(tmp_path / "nope.json"))
