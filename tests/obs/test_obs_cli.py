"""End-to-end ``--run-dir`` + ``repro-mnm obs`` CLI behaviour."""

from __future__ import annotations

import json

import pytest

from repro.experiments.cli import (
    EXIT_BAD_PATH,
    EXIT_BAD_VALUE,
    EXIT_PERF_REGRESSION,
    main,
)
from repro.obs.manifest import load_manifest
from repro.obs.regress import BASELINE_SCHEMA

SMALL = ["--instructions", "4000", "--workloads", "twolf",
         "--warmup-fraction", "0.25"]


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory):
    """One observed ``run fig10`` shared by every test in this module."""
    path = tmp_path_factory.mktemp("obs") / "run"
    code = main(["run", "fig10", *SMALL, "--jobs", "1",
                 "--run-dir", str(path)])
    assert code == 0
    return path


class TestRunDir:
    def test_manifest_written_beside_journal(self, run_dir):
        assert (run_dir / "manifest.json").exists()
        assert (run_dir / "journal.jsonl").exists()
        manifest = load_manifest(str(run_dir))
        assert manifest["status"] == "ok"
        assert manifest["command"] == "run"

    def test_span_tree_covers_every_executed_task(self, run_dir):
        manifest = load_manifest(str(run_dir))
        ledger_ids = {task["task_id"] for task in manifest["tasks"]}
        assert ledger_ids
        span_task_ids = {
            span["attrs"]["task"] for span in manifest["spans"]
            if span["name"].startswith("task.")
        }
        assert ledger_ids == span_task_ids
        # Journal completion count matches the ledger.
        assert manifest["journal"]["completed"] == len(manifest["tasks"])

    def test_counters_recorded_in_manifest(self, run_dir):
        manifest = load_manifest(str(run_dir))
        assert manifest["metrics"]["counters"]["pass.references"] > 0

    def test_rerun_marks_tasks_resumed(self, run_dir, tmp_path):
        import shutil

        # Re-run against a copy so the shared fixture manifest keeps
        # describing the original (executing) run.
        copy = tmp_path / "rerun"
        shutil.copytree(run_dir, copy)
        code = main(["run", "fig10", *SMALL, "--jobs", "1",
                     "--run-dir", str(copy)])
        assert code == 0
        manifest = load_manifest(str(copy))
        assert manifest["tasks"]
        assert all(task["worker"] == "resumed" and task["attempt"] == 0
                   for task in manifest["tasks"])

    def test_conflicting_flags_rejected(self, tmp_path, capsys):
        for extra in (["--resume", str(tmp_path / "r")],
                      ["--cache-dir", str(tmp_path / "c")],
                      ["--no-cache"]):
            with pytest.raises(SystemExit) as excinfo:
                main(["run", "fig10", *SMALL,
                      "--run-dir", str(tmp_path / "d"), *extra])
            assert excinfo.value.code == EXIT_BAD_VALUE
            capsys.readouterr()


class TestObsShow:
    def test_show_renders_timeline_and_tasks(self, run_dir, capsys):
        assert main(["obs", "show", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "timeline:" in out
        assert "task.reference_pass" in out
        assert "slowest" in out

    def test_show_missing_manifest_exits_3(self, tmp_path, capsys):
        assert main(["obs", "show", str(tmp_path / "none")]) == EXIT_BAD_PATH
        assert "cannot read" in capsys.readouterr().err


class TestObsDiff:
    def test_diff_of_run_against_itself(self, run_dir, capsys):
        assert main(["obs", "diff", str(run_dir), str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "per-phase wall-clock" in out
        assert "warning" not in out  # same fingerprint

    def test_diff_warns_on_fingerprint_mismatch(self, run_dir, tmp_path,
                                                capsys):
        other = tmp_path / "other"
        main(["run", "fig10", "--instructions", "8000",
              "--workloads", "twolf", "--warmup-fraction", "0.25",
              "--jobs", "1", "--run-dir", str(other)])
        capsys.readouterr()
        assert main(["obs", "diff", str(run_dir), str(other)]) == 0
        assert "fingerprints differ" in capsys.readouterr().out


class TestObsRegress:
    def _write_baseline(self, path, metrics, name="run"):
        path.write_text(json.dumps(
            {"schema": BASELINE_SCHEMA, "name": name, "metrics": metrics}))

    def test_passing_gate_exits_0(self, run_dir, tmp_path, capsys):
        baseline = tmp_path / "run.json"
        self._write_baseline(baseline, {
            "wall_seconds": {"value": 120.0, "max_ratio": 10.0},
            "counters.pass.references": {"value": 1, "min_ratio": 1.0},
        })
        assert main(["obs", "regress", str(run_dir),
                     "--baseline", str(baseline)]) == 0
        assert "no regression" in capsys.readouterr().out

    def test_injected_slowdown_exits_8(self, run_dir, tmp_path, capsys):
        baseline = tmp_path / "run.json"
        # A baseline claiming the run should take ~1ms: guaranteed FAIL.
        self._write_baseline(baseline, {
            "wall_seconds": {"value": 0.000001, "max_ratio": 1.0}})
        assert main(["obs", "regress", str(run_dir),
                     "--baseline", str(baseline)]) == EXIT_PERF_REGRESSION
        assert "perf regression" in capsys.readouterr().out

    def test_baseline_directory_matched_by_command(self, run_dir, tmp_path,
                                                   capsys):
        self._write_baseline(tmp_path / "other.json", {}, name="search")
        self._write_baseline(tmp_path / "run.json", {
            "tasks.executed": {"value": 1, "min_ratio": 1.0}}, name="run")
        assert main(["obs", "regress", str(run_dir),
                     "--baseline", str(tmp_path)]) == 0
        capsys.readouterr()

    def test_no_matching_baseline_exits_4(self, run_dir, tmp_path, capsys):
        self._write_baseline(tmp_path / "other.json", {}, name="search")
        assert main(["obs", "regress", str(run_dir),
                     "--baseline", str(tmp_path)]) == EXIT_BAD_VALUE
        assert "no baseline named" in capsys.readouterr().err

    def test_gates_bench_envelope_documents(self, tmp_path, capsys):
        bench = tmp_path / "BENCH_x.json"
        bench.write_text(json.dumps({
            "schema": "repro-bench/v1", "created_by": "bench_x",
            "metrics": {"seconds.serial_cold": 50.0}}))
        baseline = tmp_path / "bench_x.json"
        self._write_baseline(baseline, {
            "seconds.serial_cold": {"value": 60.0, "max_ratio": 1.5}},
            name="bench_x")
        assert main(["obs", "regress", str(bench),
                     "--baseline", str(baseline)]) == 0
        capsys.readouterr()
