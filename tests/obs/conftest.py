"""Shared fixtures for obs tests: restore telemetry/cache defaults."""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.experiments.base import clear_pass_cache


@pytest.fixture(autouse=True)
def reset_telemetry():
    """Leave every test with the global null singletons reinstated."""
    telemetry.reset()
    clear_pass_cache()
    yield
    telemetry.reset()
    clear_pass_cache()
