"""Property test: no point in the search space breaks one-sidedness.

The MNM's contract is that a "definite miss" answer is never wrong.  The
paper's configurations are tested elsewhere; the search subsystem opens
the door to *arbitrary* knob combinations, so this property test samples
random points from the full paper space, simulates each on a small
adversarial hierarchy, and asserts the soundness meter never records a
violation — for any sampled design.
"""

from hypothesis import HealthCheck, given, settings as hsettings
from hypothesis import strategies as st

from repro.experiments.base import ExperimentSettings, reference_pass
from repro.search.space import paper_space
from tests.conftest import small_hierarchy_config

SPACE = paper_space()
HIERARCHY = small_hierarchy_config(3)
SETTINGS = ExperimentSettings(num_instructions=4000, warmup_fraction=0.25,
                              workloads=("twolf",))


@hsettings(max_examples=20, deadline=None,
           suppress_health_check=[HealthCheck.too_slow])
@given(index=st.integers(min_value=0, max_value=SPACE.size - 1))
def test_sampled_search_point_never_produces_a_false_miss(index):
    point = SPACE.point(index)
    design = point.design()
    assert design.name == point.name  # canonical-name round trip

    result = reference_pass("twolf", HIERARCHY, (design,), SETTINGS)
    meter = result.designs[point.name].coverage
    assert meter.violations == 0, (
        f"{point.name} produced {meter.violations} false miss "
        f"determinations")
    assert 0.0 <= meter.coverage <= 1.0
