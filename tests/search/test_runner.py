"""Tests for the search runner: determinism, dedupe, budgets, resume."""

import pytest

from repro import telemetry
from repro.experiments.base import ExperimentSettings
from repro.experiments.checkpoint import RunJournal
from repro.experiments.passcache import configure_pass_cache
from repro.search.objectives import Objective
from repro.search.runner import BASELINE_FAMILY, baseline_points, run_search
from repro.search.samplers import (
    GridSampler,
    RandomSampler,
    SuccessiveHalvingSampler,
)
from repro.search.space import quick_space
from tests.conftest import small_hierarchy_config

TINY = ExperimentSettings(num_instructions=4000, warmup_fraction=0.25,
                          workloads=("twolf",))
HIERARCHY = small_hierarchy_config(3)


@pytest.fixture(autouse=True)
def fresh_state():
    """Each test starts with an empty cache and clean telemetry."""
    configure_pass_cache()
    telemetry.reset()
    yield
    configure_pass_cache()
    telemetry.reset()


def quick_search(sampler, objective=None, **kwargs):
    kwargs.setdefault("settings", TINY)
    kwargs.setdefault("hierarchy_config", HIERARCHY)
    kwargs.setdefault("include_baselines", False)
    return run_search(quick_space(), sampler, objective or Objective(),
                      **kwargs)


class TestDeterminism:
    def test_reports_byte_identical_across_jobs(self):
        serial = quick_search(RandomSampler(6, seed=7), jobs=1)
        configure_pass_cache()
        parallel = quick_search(RandomSampler(6, seed=7), jobs=2)
        assert parallel.render() == serial.render()
        assert parallel.to_dict() == serial.to_dict()

    def test_same_seed_same_report(self):
        first = quick_search(RandomSampler(5, seed=3))
        configure_pass_cache()
        second = quick_search(RandomSampler(5, seed=3))
        assert first.render() == second.render()


class TestRanking:
    def test_grid_ranks_every_point(self):
        space = quick_space()
        report = quick_search(GridSampler())
        assert report.evaluated == space.size
        assert len(report.ranked) == space.size
        # ranked by coverage descending (ties by storage then name)
        coverages = [e.coverage for e in report.ranked]
        assert coverages == sorted(coverages, reverse=True)

    def test_frontier_is_pareto(self):
        report = quick_search(GridSampler())
        frontier = report.frontier
        assert frontier
        storages = [p.storage_bits for p in frontier]
        coverages = [p.coverage for p in frontier]
        assert storages == sorted(storages)
        assert coverages == sorted(coverages)

    def test_no_sampled_point_violates_one_sidedness(self):
        report = quick_search(GridSampler())
        assert all(e.violations == 0 for e in report.ranked)


class TestBudget:
    def test_over_budget_candidates_are_pruned_not_simulated(self):
        # a budget below every design's storage: nothing simulates
        report = quick_search(GridSampler(),
                              Objective(budget_bits=1))
        assert report.evaluated == 0
        assert report.pruned == quick_space().size
        assert report.tasks_planned == 0
        assert report.ranked == []

    def test_winner_respects_budget(self):
        budget = 40_000
        report = quick_search(GridSampler(), Objective(budget_bits=budget))
        assert report.winner is not None
        assert report.winner.storage_bits <= budget
        assert all(e.storage_bits <= budget for e in report.ranked)

    def test_winner_at_least_matches_best_paper_config(self):
        # The acceptance criterion: seeding the candidate set with the
        # paper's fixed line-up means the search winner can never be
        # worse than the best hand-picked configuration under the budget.
        budget = 80_000  # roughly Table 3's HMNM2 footprint
        report = quick_search(
            RandomSampler(4, seed=1),
            Objective(metric="coverage", budget_bits=budget),
            include_baselines=True,
        )
        paper_best = max(
            (e.coverage for e in report.ranked
             if e.point.family == BASELINE_FAMILY),
            default=None,
        )
        assert paper_best is not None
        assert report.winner.coverage >= paper_best

    def test_min_coverage_marks_infeasible(self):
        report = quick_search(GridSampler(), Objective(min_coverage=0.99))
        # the tiny adversarial hierarchy never reaches 99% coverage with
        # the quick space's small filters
        assert report.infeasible > 0
        assert all(e.coverage >= 0.99 for e in report.ranked)


class TestBaselines:
    def test_baseline_points_exclude_the_oracle(self):
        names = [point.name for point in baseline_points()]
        assert "PERFECT" not in names
        assert "TMNM_10x1" in names
        assert "HMNM2" in names
        assert all(point.family == BASELINE_FAMILY
                   for point in baseline_points())


class TestFidelity:
    def test_halving_ranks_only_full_trace_evaluations(self):
        sampler = SuccessiveHalvingSampler(num_samples=6, eta=3, num_rungs=2,
                                           seed=4)
        report = quick_search(sampler)
        assert all(e.fidelity == 1.0 for e in report.ranked)
        # rung 0 ran at fidelity 1/3, so more candidates were evaluated
        # than are rankable
        assert report.evaluated > len(report.ranked)


class TestDedupeAndResume:
    def test_repeat_proposals_hit_the_cache(self):
        first = quick_search(GridSampler())
        assert first.tasks_computed == first.tasks_planned
        # same process, same cache: a second identical search recomputes
        # nothing
        second = quick_search(GridSampler())
        assert second.tasks_computed == 0
        assert second.tasks_cache_hits == second.tasks_planned
        assert second.render() == first.render()

    def test_journal_resume_recomputes_nothing(self, tmp_path):
        run_dir = str(tmp_path / "run")
        journal = RunJournal.open(run_dir)
        configure_pass_cache(cache_dir=RunJournal.passes_dir(run_dir))
        try:
            first = quick_search(RandomSampler(5, seed=2), journal=journal)
        finally:
            journal.close()
        assert first.tasks_computed > 0

        # a fresh process would start from the journal's disk cache
        configure_pass_cache(cache_dir=RunJournal.passes_dir(run_dir))
        journal = RunJournal.open(run_dir)
        try:
            resumed = quick_search(RandomSampler(5, seed=2), journal=journal)
        finally:
            journal.close()
        assert resumed.tasks_computed == 0
        assert resumed.render() == first.render()


class TestValidation:
    def test_top_k_validated(self):
        with pytest.raises(ValueError, match="top_k"):
            quick_search(GridSampler(), top_k=0)


class TestTelemetry:
    def test_search_counters_stream(self):
        telemetry.enable_metrics()
        quick_search(GridSampler())
        counters = telemetry.get_registry().snapshot()["counters"]
        assert counters.get("search.rounds", 0) >= 1
        assert counters.get("search.candidates.evaluated", 0) == \
            quick_space().size
        assert counters.get("search.tasks.planned", 0) > 0
