"""End-to-end tests for ``repro-mnm search``."""

import json

import pytest

from repro.experiments.cli import main

# Fast knobs shared by every invocation that actually simulates.
SMALL = ["--space", "quick", "--instructions", "4000",
         "--workloads", "twolf", "--no-baselines"]


class TestSearchCommand:
    def test_search_runs_and_reports(self, capsys):
        code = main(["search", *SMALL, "--sampler", "random",
                     "--samples", "4", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "== search: space=quick" in out
        assert "rank" in out
        assert "Pareto frontier" in out

    def test_deterministic_across_jobs(self, tmp_path, capsys):
        # telemetry log lines legitimately differ between runs, so the
        # byte comparison targets the report artifact (--output), exactly
        # like the CI smoke job does
        args = ["search", *SMALL, "--sampler", "random", "--samples", "4",
                "--seed", "9"]
        serial_path = tmp_path / "serial.txt"
        parallel_path = tmp_path / "parallel.txt"
        assert main([*args, "--jobs", "1", "--output",
                     str(serial_path)]) == 0
        assert main([*args, "--jobs", "2", "--output",
                     str(parallel_path)]) == 0
        capsys.readouterr()
        assert parallel_path.read_bytes() == serial_path.read_bytes()

    def test_budget_and_json_output(self, tmp_path, capsys):
        path = tmp_path / "search.jsonl"
        code = main(["search", *SMALL, "--sampler", "grid",
                     "--budget-bits", "40000", "--top-k", "3",
                     "--json", str(path)])
        assert code == 0
        payload = json.loads(path.read_text().strip())
        assert payload["experiment_id"] == "search"
        assert payload["objective"] == "coverage, budget<=40000bits"
        assert len(payload["ranked"]) <= 3
        for entry in payload["ranked"]:
            assert entry["storage_bits"] <= 40000

    def test_resume_after_interrupt_is_byte_identical(self, tmp_path,
                                                      capsys, monkeypatch):
        args = ["search", *SMALL, "--sampler", "random", "--samples", "4",
                "--seed", "5", "--jobs", "1"]
        clean_path = tmp_path / "clean.txt"
        assert main([*args, "--output", str(clean_path)]) == 0

        # Interrupt the run mid-flight via an injected KeyboardInterrupt,
        # then resume: the journal replays completed passes and the final
        # report must match the uninterrupted one byte for byte.
        run_dir = str(tmp_path / "run")
        monkeypatch.setenv(
            "REPRO_FAULTS",
            json.dumps({"site": "task", "kind": "interrupt", "rate": 0.5,
                        "fail_attempts": 1, "seed": 1}))
        code = main([*args, "--resume", run_dir])
        assert code in (0, 130)  # interrupted (or too lucky to be hit)

        monkeypatch.delenv("REPRO_FAULTS")
        resumed_path = tmp_path / "resumed.txt"
        assert main([*args, "--resume", run_dir, "--output",
                     str(resumed_path)]) == 0
        capsys.readouterr()
        assert resumed_path.read_bytes() == clean_path.read_bytes()


class TestSearchValidation:
    def test_unknown_space_exits_4(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            raise SystemExit(main(["search", "--space", "galactic"]))
        assert excinfo.value.code == 4

    def test_unknown_sampler_exits_4(self):
        with pytest.raises(SystemExit) as excinfo:
            raise SystemExit(main(["search", "--sampler", "annealing"]))
        assert excinfo.value.code == 4

    def test_unknown_objective_exits_4(self):
        with pytest.raises(SystemExit) as excinfo:
            raise SystemExit(main(["search", "--objective", "latency"]))
        assert excinfo.value.code == 4

    def test_bad_samples_exits_4(self):
        with pytest.raises(SystemExit) as excinfo:
            raise SystemExit(main(["search", "--samples", "0"]))
        assert excinfo.value.code == 4

    def test_bad_budget_exits_4(self):
        with pytest.raises(SystemExit) as excinfo:
            raise SystemExit(main(["search", "--budget-bits", "0"]))
        assert excinfo.value.code == 4


class TestRegistryEntry:
    def test_search_is_a_registered_heavy_extension(self):
        from repro.experiments.registry import get_experiment

        entry = get_experiment("search")
        assert entry.heavy
        assert entry.extension
