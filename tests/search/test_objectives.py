"""Tests for search objectives: scoring, constraints, deterministic order."""

import pytest

from repro.search.objectives import INFEASIBLE, Evaluation, Objective
from repro.search.space import DesignPoint


def evaluation(name="TMNM_10x2", bits=8 * 1024, identified=50,
               candidates=100, violations=0, energy=0.3, access=0.2,
               fidelity=1.0):
    return Evaluation(
        point=DesignPoint(family="tmnm", name=name),
        storage_bits=bits,
        identified=identified,
        candidates=candidates,
        violations=violations,
        energy_reduction=energy,
        access_time_reduction=access,
        fidelity=fidelity,
    )


class TestEvaluation:
    def test_coverage(self):
        assert evaluation(identified=25, candidates=100).coverage == 0.25
        assert evaluation(identified=0, candidates=0).coverage == 0.0

    def test_coverage_per_kb_zero_storage(self):
        assert evaluation(bits=0).coverage_per_kb == float("inf")
        assert evaluation(bits=0, identified=0).coverage_per_kb == 0.0

    def test_storage_kb(self):
        assert evaluation(bits=8 * 1024).storage_kb == 1.0


class TestConstraints:
    def test_budget_is_inclusive(self):
        objective = Objective(budget_bits=1000)
        assert objective.within_budget(1000)
        assert not objective.within_budget(1001)

    def test_no_budget_accepts_everything(self):
        assert Objective().within_budget(10**9)

    def test_min_coverage(self):
        objective = Objective(min_coverage=0.5)
        assert objective.feasible(evaluation(identified=50))
        assert not objective.feasible(evaluation(identified=49))

    def test_validation(self):
        with pytest.raises(ValueError, match="metric"):
            Objective(metric="latency")
        with pytest.raises(ValueError, match="budget_bits"):
            Objective(budget_bits=0)
        with pytest.raises(ValueError, match="min_coverage"):
            Objective(min_coverage=1.5)


class TestScoring:
    def test_metric_selection(self):
        e = evaluation()
        assert Objective(metric="coverage").score(e) == e.coverage
        assert Objective(metric="coverage-per-kb").score(e) == \
            e.coverage_per_kb
        assert Objective(metric="energy").score(e) == e.energy_reduction
        assert Objective(metric="access-time").score(e) == \
            e.access_time_reduction

    def test_infeasible_scores_minus_inf(self):
        objective = Objective(budget_bits=100)
        assert objective.score(evaluation(bits=200)) == INFEASIBLE

    def test_sort_key_breaks_ties_on_storage_then_name(self):
        objective = Objective()
        same_cov_small = evaluation(name="b_small", bits=100)
        same_cov_large = evaluation(name="a_large", bits=200)
        tied_twin = evaluation(name="a_twin", bits=100)
        ranked = sorted([same_cov_large, same_cov_small, tied_twin],
                        key=objective.sort_key)
        assert [e.point.name for e in ranked] == \
            ["a_twin", "b_small", "a_large"]

    def test_describe_mentions_constraints(self):
        text = Objective(metric="coverage", budget_bits=5000,
                         min_coverage=0.25).describe()
        assert "coverage" in text
        assert "5000" in text
        assert "0.25" in text
