"""Tests for declarative search spaces."""

import pickle

import pytest

from repro.core.presets import parse_design
from repro.search.space import (
    FamilySpace,
    SearchSpace,
    paper_space,
    quick_space,
    space_names,
    space_preset,
)


class TestFamilySpace:
    def test_size_is_grid_product(self):
        family = FamilySpace("tmnm", (
            ("index_bits", (8, 10)),
            ("replication", (1, 2, 3)),
            ("counter_bits", (3,)),
        ))
        assert family.size == 6

    def test_coords_round_trip(self):
        family = FamilySpace("cmnm", (
            ("registers", (2, 4, 8)),
            ("low_bits", (8, 9, 10, 12)),
        ))
        for index in range(family.size):
            assert family.index_of(family.coords(index)) == index

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown family"):
            FamilySpace("bloom", (("bits", (1,)),))

    def test_empty_dimension_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            FamilySpace("tmnm", (("index_bits", ()),))

    def test_neighbors_differ_in_exactly_one_knob(self):
        family = FamilySpace("rmnm", (
            ("entries", (128, 256, 512)),
            ("associativity", (1, 2, 4)),
        ))
        coords = family.coords(4)  # the centre of the 3x3 grid
        for neighbor in family.neighbor_coords(coords):
            diffs = sum(1 for a, b in zip(coords, neighbor) if a != b)
            assert diffs == 1


class TestSearchSpace:
    def test_global_index_spans_families(self):
        space = quick_space()
        assert space.size == sum(f.size for f in space.families)
        names = [point.name for point in space.points()]
        assert len(names) == space.size
        assert len(set(names)) == space.size  # no duplicates

    def test_point_index_is_self_describing(self):
        space = quick_space()
        for index in range(space.size):
            assert space.point(index).index == index

    def test_out_of_range_rejected(self):
        space = quick_space()
        with pytest.raises(IndexError):
            space.point(space.size)
        with pytest.raises(IndexError):
            space.point(-1)

    def test_neighbors_stay_in_family(self):
        space = quick_space()
        for index in range(space.size):
            family = space.point(index).family
            for neighbor in space.neighbors(index):
                assert space.point(neighbor).family == family

    def test_duplicate_family_rejected(self):
        from repro.search.space import tmnm_space

        with pytest.raises(ValueError, match="twice"):
            SearchSpace("dup", (tmnm_space(), tmnm_space()))

    def test_space_is_picklable(self):
        space = paper_space()
        clone = pickle.loads(pickle.dumps(space))
        assert clone == space
        assert clone.point(17) == space.point(17)


class TestMaterialisation:
    def test_every_quick_point_round_trips_through_parse_design(self):
        for point in quick_space().points():
            design = point.design()
            assert design.name == point.name
            assert parse_design(point.name).name == point.name

    def test_paper_space_samples_round_trip(self):
        space = paper_space()
        # every family start plus a stride through the hybrids
        indices = sorted({0, 10, 60, 80, 100, 130, 150, space.size - 1})
        for index in indices:
            point = space.point(index)
            assert point.design().name == point.name

    def test_fingerprint_is_stable_and_distinct(self):
        space = quick_space()
        a, b = space.point(0), space.point(1)
        assert a.fingerprint == space.point(0).fingerprint
        assert a.fingerprint != b.fingerprint
        assert len(a.fingerprint) == 12

    def test_paper_space_contains_figure_configurations(self):
        names = {point.name for point in paper_space().points()}
        for expected in ("TMNM_10x2", "CMNM_8_10", "RMNM_2048_4",
                         "SMNM_13x2"):
            assert expected in names


class TestPresets:
    def test_space_names_lists_all_presets(self):
        assert "paper" in space_names()
        assert "quick" in space_names()

    def test_every_preset_builds(self):
        for name in space_names():
            space = space_preset(name)
            assert space.size > 0

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown search space"):
            space_preset("galactic")
