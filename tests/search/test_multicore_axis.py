"""Tests for the multicore search family: naming, pruning, evaluation."""

import pytest

from repro.experiments.base import ExperimentSettings, clear_pass_cache
from repro.multicore.config import parse_multicore_name
from repro.multicore.mnm import multicore_storage_bits
from repro.search import Objective, make_sampler, run_search, space_preset
from repro.search.space import MULTICORE_BASE_DESIGNS, multicore_space
from tests.conftest import small_hierarchy_config

SETTINGS = ExperimentSettings(num_instructions=2000, warmup_fraction=0.25,
                              workloads=("twolf",))


class TestSpace:
    def test_dimensions(self):
        space = multicore_space()
        assert space.size == 3 * 3 * 2 * len(MULTICORE_BASE_DESIGNS)

    def test_every_point_round_trips(self):
        space = space_preset("multicore")
        for point in space.points():
            mc, base = parse_multicore_name(point.name)
            assert point.multicore_config() == mc
            assert base in MULTICORE_BASE_DESIGNS
            assert point.design().name == base

    def test_single_core_points_have_no_topology(self):
        space = space_preset("tmnm")
        assert space.point(0).multicore_config() is None

    def test_not_in_paper_space(self):
        from repro.search.space import paper_space

        assert all(family.family != "multicore"
                   for family in paper_space().families)

    def test_neighbors_stay_in_family(self):
        space = space_preset("multicore")
        for neighbor in space.neighbors(0):
            assert space.point(neighbor).family == "multicore"


class TestStoragePruning:
    def test_private_storage_scales_with_cores(self):
        from repro.core.presets import parse_design
        from repro.multicore.config import MulticoreConfig

        config = small_hierarchy_config(3)
        design = parse_design("TMNM_12x3")
        one = multicore_storage_bits(
            config, design, MulticoreConfig(cores=1, mnm_sharing="private"))
        four = multicore_storage_bits(
            config, design, MulticoreConfig(cores=4, mnm_sharing="private"))
        assert four == 4 * one


class TestRunner:
    @pytest.fixture(autouse=True)
    def fresh_cache(self):
        clear_pass_cache()
        yield
        clear_pass_cache()

    def test_multicore_search_end_to_end(self):
        report = run_search(
            space_preset("multicore"),
            make_sampler("random", seed=3, num_samples=4),
            Objective(metric="coverage"),
            settings=SETTINGS,
            hierarchy_config=small_hierarchy_config(3),
            include_baselines=False,
        )
        assert report.evaluated == len(report.ranked) > 0
        for evaluation in report.ranked:
            assert evaluation.point.family == "multicore"
            assert evaluation.violations == 0
            assert evaluation.energy_reduction == 0.0
            assert evaluation.access_time_reduction == 0.0
            assert 0.0 <= evaluation.coverage <= 1.0
        rendered = report.render()
        assert "multicore" in rendered

    def test_report_is_stable_across_reruns(self):
        def run():
            clear_pass_cache()
            return run_search(
                space_preset("multicore"),
                make_sampler("random", seed=5, num_samples=3),
                Objective(metric="coverage"),
                settings=SETTINGS,
                hierarchy_config=small_hierarchy_config(3),
                include_baselines=False,
            ).render()

        assert run() == run()

    def test_budget_prunes_replicated_private_banks(self):
        """A budget between the shared and private footprints must prune
        exactly the topologies that replicate state."""
        from repro.core.presets import parse_design
        from repro.multicore.config import MulticoreConfig

        config = small_hierarchy_config(3)
        design = parse_design("TMNM_12x3")
        shared_bits = multicore_storage_bits(
            config, design, MulticoreConfig(cores=4, mnm_sharing="shared"))
        report = run_search(
            space_preset("multicore"),
            make_sampler("grid", num_samples=72),
            Objective(metric="coverage", budget_bits=shared_bits),
            settings=SETTINGS,
            hierarchy_config=config,
            include_baselines=False,
        )
        assert report.pruned > 0
        for evaluation in report.ranked:
            assert evaluation.storage_bits <= shared_bits
