"""Tests for the deterministic seeded samplers.

Samplers are driven synthetically here (scores come from a function of
the design name, no simulation), which pins the ask/tell protocol and the
determinism contract without any heavy passes.
"""

import pytest

from repro.search.samplers import (
    GridSampler,
    HillClimbSampler,
    Proposal,
    RandomSampler,
    SAMPLER_NAMES,
    SuccessiveHalvingSampler,
    make_sampler,
)
from repro.search.space import quick_space, space_preset


def drive(sampler, space, score_fn):
    """Run the ask/tell protocol to completion; returns proposals seen."""
    stream = sampler.proposals(space)
    proposals = []
    scores = None
    while True:
        try:
            proposal = stream.send(scores) if scores is not None \
                else next(stream)
        except StopIteration:
            return proposals
        proposals.append(proposal)
        scores = {point.name: score_fn(point) for point in proposal.points}


def index_score(point):
    """A deterministic synthetic objective: prefer higher space indices."""
    return float(point.index)


class TestProposal:
    def test_fidelity_validated(self):
        with pytest.raises(ValueError, match="fidelity"):
            Proposal((), fidelity=0.0)
        with pytest.raises(ValueError, match="fidelity"):
            Proposal((), fidelity=1.5)


class TestGridSampler:
    def test_proposes_every_point_in_index_order(self):
        space = quick_space()
        proposals = drive(GridSampler(), space, index_score)
        assert len(proposals) == 1
        assert [p.index for p in proposals[0].points] == list(range(space.size))

    def test_limit_truncates(self):
        proposals = drive(GridSampler(limit=5), quick_space(), index_score)
        assert len(proposals[0].points) == 5


class TestRandomSampler:
    def test_same_seed_same_proposals(self):
        space = space_preset("paper")
        first = drive(RandomSampler(16, seed=11), space, index_score)
        second = drive(RandomSampler(16, seed=11), space, index_score)
        assert first == second

    def test_different_seed_different_proposals(self):
        space = space_preset("paper")
        a = drive(RandomSampler(16, seed=1), space, index_score)
        b = drive(RandomSampler(16, seed=2), space, index_score)
        assert a != b

    def test_without_replacement(self):
        proposals = drive(RandomSampler(8, seed=3), quick_space(),
                          index_score)
        names = [point.name for point in proposals[0].points]
        assert len(names) == len(set(names))

    def test_degrades_to_full_space(self):
        space = quick_space()
        proposals = drive(RandomSampler(10_000, seed=0), space, index_score)
        assert len(proposals[0].points) == space.size


class TestHillClimbSampler:
    def test_climbs_to_local_optimum_of_index_objective(self):
        # index_score is maximised at the last point of each family; the
        # climb from any restart must end with the incumbent's neighbours
        # exhausted or non-improving, never crossing a family.
        space = quick_space()
        sampler = HillClimbSampler(num_restarts=4, max_rounds=20, seed=5)
        proposals = drive(sampler, space, index_score)
        assert len(proposals) >= 2  # restarts plus at least one climb round
        seen = [p for proposal in proposals for p in proposal.points]
        names = [p.name for p in seen]
        assert len(names) == len(set(names))  # never re-proposes a point

    def test_deterministic(self):
        space = quick_space()
        a = drive(HillClimbSampler(num_restarts=3, seed=9), space,
                  index_score)
        b = drive(HillClimbSampler(num_restarts=3, seed=9), space,
                  index_score)
        assert a == b


class TestSuccessiveHalvingSampler:
    def test_fidelity_schedule_ends_at_full_trace(self):
        sampler = SuccessiveHalvingSampler(num_samples=9, eta=3, num_rungs=3,
                                           seed=2)
        proposals = drive(sampler, quick_space(), index_score)
        fidelities = [proposal.fidelity for proposal in proposals]
        assert fidelities == sorted(fidelities)
        assert fidelities[-1] == 1.0
        assert fidelities[0] == pytest.approx(1.0 / 9.0)

    def test_cohort_shrinks_by_eta(self):
        sampler = SuccessiveHalvingSampler(num_samples=9, eta=3, num_rungs=3,
                                           seed=2)
        proposals = drive(sampler, quick_space(), index_score)
        sizes = [len(proposal.points) for proposal in proposals]
        assert sizes == [9, 3, 1]

    def test_survivors_are_the_best_scored(self):
        sampler = SuccessiveHalvingSampler(num_samples=9, eta=3, num_rungs=2,
                                           seed=2)
        proposals = drive(sampler, quick_space(), index_score)
        rung0, rung1 = proposals
        best = sorted(rung0.points, key=lambda p: (-index_score(p), p.name))
        assert set(rung1.points) == set(best[:3])


class TestMakeSampler:
    def test_every_name_builds(self):
        for name in SAMPLER_NAMES:
            sampler = make_sampler(name, seed=1, num_samples=8)
            assert sampler.describe()

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown sampler"):
            make_sampler("annealing")
