"""Engine equivalence: the fast kernel against its interpreter oracle.

The contract under test is *byte identity*: every number in a
:class:`~repro.simulate.ReferencePassResult` — integer totals, exact
float energy, coverage counters, cache statistics — must be equal
between ``engine="interp"`` and ``engine="fast"`` for the same inputs.
Floats are compared with ``==`` on purpose: the kernel replays the
interpreter's exact addition order, so approximate comparison would
mask a real divergence.
"""

import dataclasses

import pytest

from repro import telemetry
from repro.cache.presets import paper_hierarchy_2level, paper_hierarchy_5level
from repro.core.presets import parse_design
from repro.simulate import run_reference_pass
from repro.workloads import get_trace, workload_names

pytestmark = pytest.mark.skipif(
    not __import__("repro.kernel", fromlist=["engine_available"])
    .engine_available(),
    reason="fast engine requires numpy",
)

#: One design per filter family, plus the hybrid and oracle bounds.
FAMILY_DESIGNS = ("TMNM_10x1", "SMNM_10x2", "CMNM_2_9", "RMNM_512_2",
                  "HMNM1", "PERFECT")


def _run(workload, hierarchy, engine, num_instructions=4000,
         warmup_fraction=0.3, designs=FAMILY_DESIGNS):
    trace = get_trace(workload, num_instructions, 0)
    fetch_block = hierarchy.tiers[0].configs[0].block_size
    references = list(trace.memory_references(fetch_block))
    return run_reference_pass(
        references, hierarchy, [parse_design(name) for name in designs],
        workload_name=workload,
        warmup=int(len(references) * warmup_fraction),
        engine=engine,
    )


def _snapshot(result):
    """Every reported field, floats exact, in a comparable form."""
    designs = []
    for name in sorted(result.designs):
        design = result.designs[name]
        meter = design.coverage
        designs.append((
            name,
            design.design_name,
            dataclasses.astuple(design.energy),
            design.access_time,
            design.storage_bits,
            meter.accesses,
            meter.violations,
            meter.candidates,
            meter.identified,
            tuple(meter.tier_candidates(tier)
                  for tier in range(2, meter.num_tiers + 1)),
            tuple(meter.tier_coverage(tier)
                  for tier in range(2, meter.num_tiers + 1)),
        ))
    return (
        result.workload,
        result.hierarchy_name,
        result.references,
        result.baseline_access_time,
        result.baseline_miss_time,
        dataclasses.astuple(result.baseline_energy),
        tuple(sorted(result.cache_stats.items())),
        tuple(designs),
    )


@pytest.mark.parametrize("workload", workload_names())
def test_engines_identical_on_every_workload(workload):
    """All ten paper workloads, one design per family, exact equality."""
    hierarchy = paper_hierarchy_2level()
    interp = _run(workload, hierarchy, "interp")
    fast = _run(workload, hierarchy, "fast")
    assert _snapshot(fast) == _snapshot(interp)


def test_engines_identical_on_deep_hierarchy():
    """The 5-level hierarchy exercises split tiers and granule fan-out."""
    hierarchy = paper_hierarchy_5level()
    interp = _run("gcc", hierarchy, "interp", num_instructions=3000)
    fast = _run("gcc", hierarchy, "fast", num_instructions=3000)
    assert _snapshot(fast) == _snapshot(interp)


def test_engines_identical_without_warmup():
    hierarchy = paper_hierarchy_2level()
    interp = _run("art", hierarchy, "interp", warmup_fraction=0.0)
    fast = _run("art", hierarchy, "fast", warmup_fraction=0.0)
    assert _snapshot(fast) == _snapshot(interp)


def test_engines_emit_identical_metrics():
    """``--metrics-out`` parity: same counters, same totals, both engines.

    Only wall-clock profiler timings are outside the byte-identity
    contract; the counter registry must match exactly.
    """
    hierarchy = paper_hierarchy_2level()
    try:
        telemetry.enable_metrics()
        _run("twolf", hierarchy, "interp")
        interp_counters = telemetry.get_registry().snapshot()
    finally:
        telemetry.reset()
    try:
        telemetry.enable_metrics()
        _run("twolf", hierarchy, "fast")
        fast_counters = telemetry.get_registry().snapshot()
    finally:
        telemetry.reset()
    assert fast_counters == interp_counters


def test_empty_reference_stream_raises_on_both_engines():
    hierarchy = paper_hierarchy_2level()
    designs = [parse_design("TMNM_10x1")]
    with pytest.raises(ValueError) as interp_error:
        run_reference_pass([], hierarchy, designs, engine="interp")
    with pytest.raises(ValueError) as fast_error:
        run_reference_pass([], hierarchy, designs, engine="fast")
    assert str(fast_error.value) == str(interp_error.value)


def test_unknown_engine_rejected():
    hierarchy = paper_hierarchy_2level()
    with pytest.raises(ValueError, match="unknown engine"):
        run_reference_pass([(0, None)], hierarchy, [], engine="turbo")


def test_tracer_forces_interpreter(tmp_path):
    """With the decision tracer on, ``fast`` must fall back to interp —
    only the interpreter emits per-access records — and still produce
    identical results (the engines agree, so the fallback is invisible)."""
    hierarchy = paper_hierarchy_2level()
    baseline = _run("vpr", hierarchy, "interp")
    try:
        telemetry.enable_tracing(str(tmp_path / "trace.jsonl"))
        traced = _run("vpr", hierarchy, "fast")
        records = telemetry.get_tracer().emitted
    finally:
        telemetry.reset()
    assert records > 0
    assert _snapshot(traced) == _snapshot(baseline)
