"""Seeded-violation acceptance: plant each contract break, watch it die.

Each test stages a miniature ``repro``-shaped tree with exactly one
planted violation — a dropped cache-key field, an unsorted merge loop,
a bare ``open(..., "w")`` in a backends module — and runs the real CLI
over it, pinning exit 7 and the specific rule.  This is the end-to-end
proof that the contract rules fire through the full stack (discovery,
module naming, project-rule wiring, reporting), not just in unit
fixtures.
"""

from __future__ import annotations

import io
import textwrap

from repro.staticcheck.cli import EXIT_FINDINGS, EXIT_OK, run_check


def _run(paths, **kwargs):
    out, err = io.StringIO(), io.StringIO()
    code = run_check(paths, out=out, err=err, **kwargs)
    return code, out.getvalue(), err.getvalue()


def _plant(root, relpath, source):
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    for parent in path.relative_to(root).parents:
        if str(parent) != ".":
            init = root / parent / "__init__.py"
            if not init.exists():
                init.write_text("")
    path.write_text(textwrap.dedent(source))
    return path


_SETTINGS = """\
    from dataclasses import dataclass


    @dataclass(frozen=True)
    class ExperimentSettings:
        seed: int = 7
        trace_length: int = 1000
"""


class TestSeededCacheKeyDrop:
    def test_dropped_field_fails_with_r007(self, tmp_path):
        # fingerprint_settings forgets trace_length: two configs that
        # simulate differently would collide in the pass cache.
        _plant(tmp_path, "repro/experiments/base.py", _SETTINGS)
        _plant(tmp_path, "repro/experiments/passcache.py", """\
            def fingerprint_settings(settings):
                return f"seed={settings.seed}"
        """)
        code, out, _ = _run([str(tmp_path / "repro")], rules_csv="R007")
        assert code == EXIT_FINDINGS
        assert "R007" in out and "trace_length" in out
        assert "base.py" in out  # anchored at the field, not the builder

    def test_complete_fingerprint_passes(self, tmp_path):
        _plant(tmp_path, "repro/experiments/base.py", _SETTINGS)
        _plant(tmp_path, "repro/experiments/passcache.py", """\
            def fingerprint_settings(settings):
                return f"seed={settings.seed}|len={settings.trace_length}"
        """)
        code, _, _ = _run([str(tmp_path / "repro")], rules_csv="R007")
        assert code == EXIT_OK


class TestSeededUnorderedMerge:
    def test_set_iteration_in_merge_path_fails_with_r008(self, tmp_path):
        _plant(tmp_path, "repro/experiments/report.py", """\
            def merge_rows(shards):
                rows = []
                for shard in set(shards):
                    rows.append(shard)
                return rows
        """)
        code, out, _ = _run([str(tmp_path / "repro")], rules_csv="R008")
        assert code == EXIT_FINDINGS
        assert "R008" in out and "hash seed" in out

    def test_sorted_merge_passes(self, tmp_path):
        _plant(tmp_path, "repro/experiments/report.py", """\
            def merge_rows(shards):
                rows = []
                for shard in sorted(set(shards)):
                    rows.append(shard)
                return rows
        """)
        code, _, _ = _run([str(tmp_path / "repro")], rules_csv="R008")
        assert code == EXIT_OK


class TestSeededBareWrite:
    def test_bare_open_in_backends_fails_with_r009(self, tmp_path):
        _plant(tmp_path, "repro/experiments/backends/result_store.py", """\
            def commit(path, payload):
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(payload)
        """)
        code, out, _ = _run([str(tmp_path / "repro")], rules_csv="R009")
        assert code == EXIT_FINDINGS
        assert "R009" in out

    def test_same_write_outside_scoped_modules_passes(self, tmp_path):
        _plant(tmp_path, "repro/analysis/export.py", """\
            def dump(path, payload):
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(payload)
        """)
        code, _, _ = _run([str(tmp_path / "repro")], rules_csv="R009")
        assert code == EXIT_OK


class TestShippedTreeStaysClean:
    def test_src_tests_benchmarks_all_pass(self):
        # The CI invocation, verbatim: the shipped tree must hold every
        # contract it checks for (including tests/ and benchmarks/).
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        code, out, _ = _run([str(root / "src"), str(root / "tests"),
                             str(root / "benchmarks")])
        assert code == EXIT_OK, out
