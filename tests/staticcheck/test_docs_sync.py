"""docs/ARCHITECTURE.md's rule table must match the live registry.

The table is hand-written prose, so nothing regenerates it — this test
is the only thing keeping it honest.  It parses the markdown rows and
compares id order, severity and suppression policy against
``rule_table()`` (the same source ``--list-rules`` prints).
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.staticcheck.rules import rule_table

DOC = Path(__file__).resolve().parents[2] / "docs" / "ARCHITECTURE.md"

_ROW = re.compile(
    r"^\|\s*(?P<rule>[RE]\d{3})\s*\|\s*(?P<severity>\w+)\s*\|"
    r"\s*(?P<suppression>\w+)\s*\|")


def _documented_rows():
    rows = []
    for line in DOC.read_text(encoding="utf-8").splitlines():
        match = _ROW.match(line)
        if match:
            rows.append((match.group("rule"), match.group("severity"),
                         match.group("suppression")))
    return rows


class TestRuleTableSync:
    def test_docs_list_every_rule_in_registry_order(self):
        documented = [row[0] for row in _documented_rows()]
        registered = [row[0] for row in rule_table()]
        assert documented == registered

    def test_docs_severity_and_suppression_match_registry(self):
        documented = {row[0]: (row[1], row[2])
                      for row in _documented_rows()}
        for rule_id, _title, severity, suppression in rule_table():
            assert documented[rule_id] == (severity, suppression), (
                f"{rule_id}: docs say {documented[rule_id]}, registry "
                f"says {(severity, suppression)} — update the table in "
                f"{DOC}")

    def test_registry_values_are_legal(self):
        for rule_id, title, severity, suppression in rule_table():
            assert re.fullmatch(r"R\d{3}", rule_id)
            assert title
            assert severity in ("error", "warning")
            assert suppression in ("allow", "rationale", "partial", "no")

    def test_docs_mention_every_engine_feature(self):
        text = DOC.read_text(encoding="utf-8")
        for needle in ("--diff", "--baseline", "--cache-dir", "--jobs",
                       "sarif", "repro-staticcheck/v2", "E001", "E002",
                       "--write-baseline"):
            assert needle in text, f"ARCHITECTURE.md lost {needle!r}"
