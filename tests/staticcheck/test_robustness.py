"""The checker never crashes on a broken tree — it reports or skips.

Satellite contract: broken syntax, null bytes, undecodable files and
empty packages all map to a *finding* (E001/E002, exit 7) or a clean
skip (exit 0), with the exit-code table pinned.  A checker that dies on
the tree it is judging is useless exactly when it is needed.
"""

from __future__ import annotations

import io

from repro.staticcheck.cli import (
    EXIT_BAD_PATH,
    EXIT_BAD_VALUE,
    EXIT_FINDINGS,
    EXIT_OK,
    run_check,
)
from repro.staticcheck.engine import (
    LOAD_ERROR_ID,
    PARSE_ERROR_ID,
    load_module_checked,
)


def _run(*args, **kwargs):
    out, err = io.StringIO(), io.StringIO()
    code = run_check(*args, out=out, err=err, **kwargs)
    return code, out.getvalue(), err.getvalue()


class TestBrokenInputs:
    def test_syntax_error_is_a_finding_not_a_crash(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def half(:\n")
        code, out, err = _run([str(broken)])
        assert code == EXIT_FINDINGS
        assert PARSE_ERROR_ID in out
        assert err == ""

    def test_null_bytes_are_a_finding(self, tmp_path):
        hostile = tmp_path / "hostile.py"
        hostile.write_bytes(b"x = 1\x00\n")
        code, out, _ = _run([str(hostile)])
        assert code == EXIT_FINDINGS
        assert PARSE_ERROR_ID in out

    def test_undecodable_bytes_are_a_finding(self, tmp_path):
        hostile = tmp_path / "latin.py"
        hostile.write_bytes(b"# \xff\xfe not utf-8\nx = 1\n")
        code, out, _ = _run([str(hostile)])
        assert code == EXIT_FINDINGS
        assert LOAD_ERROR_ID in out

    def test_parse_errors_cannot_be_suppressed(self, tmp_path):
        # An unparseable file has no suppression table: a wildcard
        # marker inside it changes nothing.
        broken = tmp_path / "broken.py"
        broken.write_text("# repro: allow[*] nice try\ndef half(:\n")
        code, out, _ = _run([str(broken)])
        assert code == EXIT_FINDINGS
        assert PARSE_ERROR_ID in out

    def test_broken_file_does_not_poison_neighbours(self, tmp_path):
        (tmp_path / "broken.py").write_text("def half(:\n")
        (tmp_path / "fine.py").write_text("assert True\n")
        code, out, _ = _run([str(tmp_path)])
        assert code == EXIT_FINDINGS
        assert PARSE_ERROR_ID in out and "R005" in out

    def test_load_module_checked_never_raises(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def half(:\n")
        module, failure = load_module_checked(str(broken))
        assert module is None
        assert failure.rule_id == PARSE_ERROR_ID
        assert not failure.suppressible


class TestCleanSkips:
    def test_empty_package_is_clean(self, tmp_path):
        (tmp_path / "empty_pkg").mkdir()
        code, out, _ = _run([str(tmp_path / "empty_pkg")])
        assert code == EXIT_OK
        assert "no findings" in out

    def test_empty_file_is_clean(self, tmp_path):
        (tmp_path / "empty.py").write_text("")
        code, _, _ = _run([str(tmp_path)])
        assert code == EXIT_OK

    def test_non_python_files_are_ignored(self, tmp_path):
        (tmp_path / "notes.txt").write_text("assert True\n")
        (tmp_path / "data.json").write_text("{broken")
        code, _, _ = _run([str(tmp_path)])
        assert code == EXIT_OK

    def test_hidden_and_pycache_dirs_skipped(self, tmp_path):
        hidden = tmp_path / ".venv"
        hidden.mkdir()
        (hidden / "bad.py").write_text("def half(:\n")
        pycache = tmp_path / "__pycache__"
        pycache.mkdir()
        (pycache / "bad.py").write_text("def half(:\n")
        code, _, _ = _run([str(tmp_path)])
        assert code == EXIT_OK


class TestPinnedExitCodes:
    def test_missing_path_is_three(self):
        code, _, err = _run(["/no/such/tree"])
        assert code == EXIT_BAD_PATH and "/no/such/tree" in err

    def test_bad_rules_value_is_four(self, tmp_path):
        code, _, _ = _run([str(tmp_path)], rules_csv="R123")
        assert code == EXIT_BAD_VALUE

    def test_bad_format_is_four(self, tmp_path):
        code, _, err = _run([str(tmp_path)], fmt="yaml")
        assert code == EXIT_BAD_VALUE and "yaml" in err

    def test_bad_diff_rev_is_four(self, tmp_path, monkeypatch):
        import subprocess

        monkeypatch.chdir(tmp_path)
        subprocess.run(["git", "init", "-q"], check=True)
        (tmp_path / "x.py").write_text("x = 1\n")
        code, _, err = _run([str(tmp_path)], diff_rev="no-such-rev")
        assert code == EXIT_BAD_VALUE and "no-such-rev" in err

    def test_diff_outside_git_is_four(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "x.py").write_text("x = 1\n")
        code, _, err = _run([str(tmp_path)], diff_rev="HEAD")
        assert code == EXIT_BAD_VALUE and "git" in err

    def test_write_baseline_without_baseline_is_four(self, tmp_path):
        code, _, err = _run([str(tmp_path)], write_baseline_file=True)
        assert code == EXIT_BAD_VALUE and "--baseline" in err

    def test_missing_baseline_file_is_three(self, tmp_path):
        code, _, err = _run(
            [str(tmp_path)],
            baseline_path=str(tmp_path / "absent.json"))
        assert code == EXIT_BAD_PATH and "--write-baseline" in err

    def test_warnings_alone_do_not_fail(self, tmp_path):
        # A warning-severity finding prints but exits 0 — that is the
        # warn-only half of the ratchet workflow.
        from repro.staticcheck.engine import Finding, has_errors

        warning = Finding(rule_id="RX", path="x.py", line=1, col=1,
                          message="m", severity="warning")
        error = Finding(rule_id="RX", path="x.py", line=1, col=1,
                        message="m", severity="error")
        assert not has_errors([warning])
        assert has_errors([warning, error])
