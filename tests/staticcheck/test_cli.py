"""CLI behaviour and the repo-wide self-check.

The self-check is the acceptance bar for this whole subsystem: the
shipped tree must pass its own checker (exit 0, zero findings).
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import repro
from repro.staticcheck import check_paths
from repro.staticcheck.cli import (
    EXIT_BAD_PATH,
    EXIT_BAD_VALUE,
    EXIT_FINDINGS,
    EXIT_OK,
    default_check_root,
    main,
    run_check,
)

PACKAGE_ROOT = str(Path(repro.__file__).parent)


def _run(*args, **kwargs):
    out, err = io.StringIO(), io.StringIO()
    code = run_check(*args, out=out, err=err, **kwargs)
    return code, out.getvalue(), err.getvalue()


class TestSelfCheck:
    def test_repo_passes_its_own_checker(self):
        findings = check_paths([PACKAGE_ROOT])
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_cli_self_check_exits_zero(self):
        code, out, err = _run([PACKAGE_ROOT])
        assert code == EXIT_OK
        assert "no findings" in out
        assert err == ""

    def test_default_root_is_the_package(self):
        assert default_check_root() == PACKAGE_ROOT


class TestExitCodes:
    def test_findings_exit_seven(self, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("assert True\n")
        code, out, _ = _run([str(dirty)])
        assert code == EXIT_FINDINGS
        assert "R005" in out

    def test_unknown_rule_exits_four(self, tmp_path):
        code, _, err = _run([str(tmp_path)], rules_csv="R999")
        assert code == EXIT_BAD_VALUE
        assert "R999" in err

    def test_missing_path_exits_three(self):
        code, _, err = _run(["/no/such/tree"])
        assert code == EXIT_BAD_PATH
        assert "/no/such/tree" in err


class TestOutputModes:
    def test_json_format_parses(self, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("assert True\n")
        code, out, _ = _run([str(dirty)], fmt="json")
        assert code == EXIT_FINDINGS
        payload = json.loads(out)
        assert payload["schema"] == "repro-staticcheck/v2"
        assert payload["checked_files"] == 1
        assert payload["analyzed_files"] == 1
        assert payload["baselined"] == 0
        assert [f["rule"] for f in payload["findings"]] == ["R005"]
        assert [f["severity"] for f in payload["findings"]] == ["error"]

    def test_rules_filter_narrows_findings(self, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\nassert random.random() > 0\n")
        code, out, _ = _run([str(dirty)], rules_csv="R001")
        assert code == EXIT_FINDINGS
        assert "R001" in out and "R005" not in out

    def test_list_rules_prints_all_ten(self):
        code, out, _ = _run([], list_rules=True)
        assert code == EXIT_OK
        lines = [line for line in out.splitlines() if line.strip()]
        assert [line.split()[0] for line in lines] == [
            "R001", "R002", "R003", "R004", "R005", "R006",
            "R007", "R008", "R009", "R010",
        ]
        # Severity and suppression-policy columns are part of the
        # contract (and mirrored into docs/ARCHITECTURE.md).
        for line in lines:
            columns = line.split()
            assert columns[1] in ("error", "warning")
            assert columns[2] in ("allow", "rationale", "partial", "no")


class TestEntryPoints:
    def test_standalone_main(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("assert True\n")
        assert main([str(dirty)]) == EXIT_FINDINGS
        capsys.readouterr()

    def test_repro_mnm_check_subcommand(self, tmp_path, capsys):
        from repro.experiments.cli import main as repro_mnm

        dirty = tmp_path / "dirty.py"
        dirty.write_text("assert True\n")
        assert repro_mnm(["check", str(dirty)]) == EXIT_FINDINGS
        assert repro_mnm(["check", PACKAGE_ROOT]) == EXIT_OK
        capsys.readouterr()
