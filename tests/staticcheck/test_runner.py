"""Engine-v2 orchestration: result cache, parallelism, --diff, baseline.

The contract under test everywhere here: none of the accelerations may
change a single output byte.  cold == warm == parallel == serial, and
``--diff`` only *narrows* which files contribute findings — it never
invents or reorders any.
"""

from __future__ import annotations

import io
import json
import subprocess

import pytest

from repro.staticcheck.baseline import (
    BASELINE_SCHEMA,
    load_baseline,
    split_baselined,
    write_baseline,
)
from repro.staticcheck.cache import (
    CACHE_SCHEMA,
    CacheEntry,
    ResultCache,
    rules_digest,
)
from repro.staticcheck.cli import EXIT_FINDINGS, EXIT_OK, run_check
from repro.staticcheck.engine import Finding
from repro.staticcheck.rules import rules_for
from repro.staticcheck.runner import run_analysis


def _run(*args, **kwargs):
    out, err = io.StringIO(), io.StringIO()
    code = run_check(*args, out=out, err=err, **kwargs)
    return code, out.getvalue(), err.getvalue()


def _tree(tmp_path):
    """A small package tree with one violation per file."""
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "alpha.py").write_text("assert True\n")
    (pkg / "beta.py").write_text("import random\nx = random.random()\n")
    (pkg / "gamma.py").write_text("assert 1 + 1 == 2\n")
    return pkg


class TestResultCache:
    def test_cold_then_warm_replays_identically(self, tmp_path):
        pkg = _tree(tmp_path)
        cache_dir = str(tmp_path / "cache")
        rules = rules_for(["R001", "R005"])

        cold = run_analysis([str(pkg)], rules, cache_dir=cache_dir)
        assert cold.cache_stats == {"hits": 0, "misses": 3, "stores": 3}

        warm = run_analysis([str(pkg)], rules, cache_dir=cache_dir)
        assert warm.cache_stats == {"hits": 3, "misses": 0, "stores": 0}
        assert warm.findings == cold.findings
        assert warm.checked_files == cold.checked_files == 3

    def test_changed_file_misses_unchanged_files_hit(self, tmp_path):
        pkg = _tree(tmp_path)
        cache_dir = str(tmp_path / "cache")
        rules = rules_for(["R005"])
        run_analysis([str(pkg)], rules, cache_dir=cache_dir)

        (pkg / "alpha.py").write_text("assert True  # touched\n")
        second = run_analysis([str(pkg)], rules, cache_dir=cache_dir)
        assert second.cache_stats == {"hits": 2, "misses": 1, "stores": 1}

    def test_rule_set_change_invalidates(self, tmp_path):
        # The digest covers the selected rule ids: results computed for
        # one rule set can never replay for another.
        pkg = _tree(tmp_path)
        cache_dir = str(tmp_path / "cache")
        run_analysis([str(pkg)], rules_for(["R005"]), cache_dir=cache_dir)
        other = run_analysis([str(pkg)], rules_for(["R001"]),
                             cache_dir=cache_dir)
        assert other.cache_stats["hits"] == 0
        assert [f.rule_id for f in other.findings] == ["R001"]

    def test_rules_digest_depends_on_rule_ids(self):
        assert rules_digest(["R001"]) != rules_digest(["R001", "R005"])
        assert rules_digest(["R005", "R001"]) == rules_digest(
            ["R001", "R005"])

    def test_corrupt_entries_read_as_misses(self, tmp_path):
        pkg = _tree(tmp_path)
        cache_dir = tmp_path / "cache"
        rules = rules_for(["R005"])
        baseline = run_analysis([str(pkg)], rules,
                                cache_dir=str(cache_dir))
        for entry in cache_dir.glob("*.json"):
            entry.write_text("{not json")
        recovered = run_analysis([str(pkg)], rules,
                                 cache_dir=str(cache_dir))
        assert recovered.cache_stats["hits"] == 0
        assert recovered.findings == baseline.findings

    def test_schema_or_digest_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"), ("R005",))
        entry = CacheEntry(path="x.py", module=None, imports=(),
                           findings=(Finding(
                               rule_id="R005", path="x.py", line=1, col=1,
                               message="m"),))
        cache.store("x.py", b"data", entry)
        # Same bytes, same rules: a hit.
        assert cache.load("x.py", b"data") is not None
        # Doctor the stored digest: must degrade to a miss.
        stored = next((tmp_path / "c").glob("*.json"))
        payload = json.loads(stored.read_text())
        assert payload["schema"] == CACHE_SCHEMA
        payload["digest"] = "0" * 64
        stored.write_text(json.dumps(payload))
        fresh = ResultCache(str(tmp_path / "c"), ("R005",))
        assert fresh.load("x.py", b"data") is None

    def test_disabled_cache_is_a_noop(self, tmp_path):
        pkg = _tree(tmp_path)
        result = run_analysis([str(pkg)], rules_for(["R005"]))
        assert result.cache_stats == {"hits": 0, "misses": 0, "stores": 0}
        assert len(result.findings) == 2

    def test_readonly_cache_dir_degrades_silently(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"), ("R005",))
        cache.cache_dir = str(tmp_path / "c" / "missing" / "deep")
        entry = CacheEntry(path="x.py", module=None, imports=(),
                           findings=())
        cache.store("x.py", b"data", entry)  # must not raise
        assert cache.stats()["stores"] == 0


class TestParallelDeterminism:
    def test_jobs_do_not_change_output(self, tmp_path):
        pkg = _tree(tmp_path)
        rules = rules_for(None)
        serial = run_analysis([str(pkg)], rules, jobs=1)
        parallel = run_analysis([str(pkg)], rules, jobs=4)
        assert serial.findings == parallel.findings

    def test_jobs_zero_resolves_to_cpus(self, tmp_path):
        pkg = _tree(tmp_path)
        result = run_analysis([str(pkg)], rules_for(["R005"]), jobs=0)
        assert len(result.findings) == 2

    def test_parallel_populates_the_cache(self, tmp_path):
        pkg = _tree(tmp_path)
        cache_dir = str(tmp_path / "cache")
        rules = rules_for(["R005"])
        cold = run_analysis([str(pkg)], rules, cache_dir=cache_dir, jobs=3)
        assert cold.cache_stats["stores"] == 3
        warm = run_analysis([str(pkg)], rules, cache_dir=cache_dir, jobs=1)
        assert warm.cache_stats == {"hits": 3, "misses": 0, "stores": 0}
        assert warm.findings == cold.findings


def _git(repo, *argv):
    subprocess.run(["git", "-C", str(repo), *argv], check=True,
                   capture_output=True)


@pytest.fixture
def git_tree(tmp_path, monkeypatch):
    """A committed package named ``repro`` so module names resolve."""
    repo = tmp_path / "work"
    pkg = repo / "repro"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    (pkg / "a.py").write_text("A = 1\n")
    (pkg / "b.py").write_text("import repro.a\nB = repro.a.A\n")
    (pkg / "c.py").write_text("assert True\n")
    _git(repo, "init", "-q")
    _git(repo, "config", "user.email", "check@example.com")
    _git(repo, "config", "user.name", "check")
    _git(repo, "add", ".")
    _git(repo, "commit", "-q", "-m", "seed")
    monkeypatch.chdir(repo)
    return repo


class TestDiffMode:
    def test_no_changes_analyzes_nothing(self, git_tree):
        result = run_analysis(["repro"], rules_for(["R005"]),
                              diff_rev="HEAD")
        assert result.checked_files == 4
        assert result.analyzed_files == 0
        assert result.findings == []

    def test_changed_file_plus_reverse_importers(self, git_tree):
        # a.py changes; b.py imports it; c.py is unrelated.  The closure
        # is exactly {a, b} — c's violation must NOT be reported.
        (git_tree / "repro" / "a.py").write_text("assert True\nA = 1\n")
        result = run_analysis(["repro"], rules_for(["R005"]),
                              diff_rev="HEAD")
        assert result.analyzed_files == 2
        assert [(f.rule_id, f.path) for f in result.findings] == [
            ("R005", "repro/a.py")]

    def test_leaf_change_stays_narrow(self, git_tree):
        # c.py imports nothing and nothing imports it: closure == {c}.
        (git_tree / "repro" / "c.py").write_text("assert False\n")
        result = run_analysis(["repro"], rules_for(["R005"]),
                              diff_rev="HEAD")
        assert result.analyzed_files == 1
        assert [f.path for f in result.findings] == ["repro/c.py"]

    def test_untracked_file_counts_as_changed(self, git_tree):
        (git_tree / "repro" / "d.py").write_text("assert True\n")
        result = run_analysis(["repro"], rules_for(["R005"]),
                              diff_rev="HEAD")
        assert result.analyzed_files == 1
        assert [f.path for f in result.findings] == ["repro/d.py"]

    def test_diff_uses_cached_imports_when_warm(self, git_tree, tmp_path):
        cache_dir = str(tmp_path / "cache")
        rules = rules_for(["R005"])
        run_analysis(["repro"], rules, cache_dir=cache_dir)
        (git_tree / "repro" / "a.py").write_text("assert True\nA = 1\n")
        result = run_analysis(["repro"], rules, cache_dir=cache_dir,
                              diff_rev="HEAD")
        # Unchanged files replay from cache (graph without re-parsing);
        # only the changed file is a miss.
        assert result.cache_stats["hits"] == 3
        assert result.cache_stats["misses"] == 1
        assert result.analyzed_files == 2

    def test_bad_revision_raises_value_error(self, git_tree):
        with pytest.raises(ValueError):
            run_analysis(["repro"], rules_for(["R005"]),
                         diff_rev="no-such-rev")

    def test_outside_git_raises_value_error(self, tmp_path, monkeypatch):
        pkg = _tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        with pytest.raises(ValueError):
            run_analysis([str(pkg)], rules_for(["R005"]),
                         diff_rev="HEAD")


class TestBaseline:
    def test_write_then_check_is_clean(self, tmp_path):
        pkg = _tree(tmp_path)
        baseline = str(tmp_path / "baseline.json")
        code, out, _ = _run([str(pkg)], baseline_path=baseline,
                            write_baseline_file=True)
        assert code == EXIT_OK
        assert "wrote baseline" in out

        payload = json.loads((tmp_path / "baseline.json").read_text())
        assert payload["schema"] == BASELINE_SCHEMA

        code, out, _ = _run([str(pkg)], baseline_path=baseline)
        assert code == EXIT_OK
        assert "baselined" in out

    def test_new_finding_still_fails(self, tmp_path):
        pkg = _tree(tmp_path)
        baseline = str(tmp_path / "baseline.json")
        _run([str(pkg)], baseline_path=baseline, write_baseline_file=True)

        (pkg / "delta.py").write_text("import time\nnow = time.time()\n")
        code, out, _ = _run([str(pkg)], baseline_path=baseline)
        assert code == EXIT_FINDINGS
        assert "delta.py" in out
        # Grandfathered findings stay subtracted from the report.
        assert "alpha.py" not in out

    def test_fixing_a_baselined_finding_ratchets(self, tmp_path):
        # Once fixed, a finding's fingerprint no longer matches anything;
        # re-writing the baseline shrinks it — the ratchet only tightens.
        pkg = _tree(tmp_path)
        baseline = str(tmp_path / "baseline.json")
        _run([str(pkg)], baseline_path=baseline, write_baseline_file=True)
        before = len(load_baseline(baseline))

        (pkg / "alpha.py").write_text("X = 1\n")
        code, _, _ = _run([str(pkg)], baseline_path=baseline)
        assert code == EXIT_OK
        _run([str(pkg)], baseline_path=baseline, write_baseline_file=True)
        assert len(load_baseline(baseline)) == before - 1

    def test_fingerprints_are_line_independent(self, tmp_path):
        finding = Finding(rule_id="R005", path="pkg/alpha.py", line=1,
                          col=1, message="assert vanishes")
        moved = Finding(rule_id="R005", path="pkg/alpha.py", line=40,
                        col=9, message="assert vanishes")
        assert finding.fingerprint() == moved.fingerprint()
        fresh, count = split_baselined(
            [moved], {finding.fingerprint()})
        assert fresh == [] and count == 1

    def test_write_baseline_helper_roundtrip(self, tmp_path):
        path = str(tmp_path / "b.json")
        finding = Finding(rule_id="R001", path="x.py", line=3, col=1,
                          message="m")
        write_baseline(path, [finding])
        assert load_baseline(path) == {finding.fingerprint()}
