"""Engine mechanics: discovery, suppressions, ordering, reporters."""

from __future__ import annotations

import json
import textwrap

from repro.staticcheck import check_paths, check_source, render_json, render_text
from repro.staticcheck.engine import (
    PARSE_ERROR_ID,
    iter_python_files,
    module_name_for,
)
from repro.staticcheck.rules import rules_for


def _check(source, module="repro.core.fixture", **kwargs):
    return check_source(textwrap.dedent(source), module=module, **kwargs)


class TestDiscovery:
    def test_walk_is_sorted_and_skips_caches(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")
        (tmp_path / "a.py").write_text("x = 1\n")
        sub = tmp_path / "__pycache__"
        sub.mkdir()
        (sub / "a.cpython-311.py").write_text("x = 1\n")
        hidden = tmp_path / ".hidden"
        hidden.mkdir()
        (hidden / "c.py").write_text("x = 1\n")
        files = iter_python_files([str(tmp_path)])
        assert [f.split("/")[-1] for f in files] == ["a.py", "b.py"]

    def test_missing_path_raises(self):
        try:
            iter_python_files(["/definitely/not/there"])
        except FileNotFoundError:
            pass
        else:
            raise AssertionError("expected FileNotFoundError")

    def test_module_name_resolution(self):
        assert module_name_for("src/repro/core/base.py") == "repro.core.base"
        assert module_name_for("src/repro/core/__init__.py") == "repro.core"
        assert module_name_for("src/repro/simulate.py") == "repro.simulate"
        assert module_name_for("/elsewhere/foo.py") is None


class TestSuppressions:
    def test_trailing_marker_silences(self):
        findings = _check("assert True  # repro: allow[R005] type narrowing\n")
        assert findings == []

    def test_marker_on_line_above_silences(self):
        findings = _check(
            """\
            # repro: allow[R005] type narrowing
            assert True
            """
        )
        assert findings == []

    def test_marker_two_lines_above_does_not_silence(self):
        findings = _check(
            """\
            # repro: allow[R005] too far away
            x = 1
            assert True
            """
        )
        assert [f.rule_id for f in findings] == ["R005"]

    def test_marker_for_other_rule_does_not_silence(self):
        findings = _check("assert True  # repro: allow[R001] wrong rule\n")
        assert [f.rule_id for f in findings] == ["R005"]

    def test_star_marker_silences_everything(self):
        findings = _check("assert True  # repro: allow[*] grandfathered\n")
        assert findings == []

    def test_multi_rule_marker(self):
        findings = _check(
            "assert True  # repro: allow[R001,R005] both named\n")
        assert findings == []

    def test_marker_inside_string_is_ignored(self):
        findings = _check(
            's = "# repro: allow[R005]"\nassert True\n')
        assert [f.rule_id for f in findings] == ["R005"]


class TestReporters:
    def test_text_and_json_are_sorted_and_stable(self):
        source = textwrap.dedent(
            """\
            assert second_finding
            assert first_line_sorts_first
            """
        )
        findings = _check(source)
        assert [f.line for f in findings] == [1, 2]
        text = render_text(findings)
        assert "R005" in text and text.endswith("2 findings")
        payload = json.loads(render_json(findings, checked_files=1))
        assert payload["schema"] == "repro-staticcheck/v2"
        assert payload["checked_files"] == 1
        assert [f["line"] for f in payload["findings"]] == [1, 2]

    def test_clean_report_renders(self):
        assert "no findings" in render_text([])
        assert json.loads(render_json([]))["findings"] == []


class TestRuleSelection:
    def test_rules_subset_runs_only_those(self):
        source = "assert True\nx = random.random()\nimport random\n"
        only_r001 = _check(source, rules=rules_for(["R001"]))
        assert {f.rule_id for f in only_r001} == {"R001"}
        only_r005 = _check(source, rules=rules_for(["r005"]))
        assert {f.rule_id for f in only_r005} == {"R005"}

    def test_unknown_rule_id_raises(self):
        try:
            rules_for(["R404"])
        except ValueError as exc:
            assert "R404" in str(exc)
        else:
            raise AssertionError("expected ValueError")


class TestParseErrors:
    def test_unparsable_file_becomes_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        findings = check_paths([str(tmp_path)])
        assert [f.rule_id for f in findings] == [PARSE_ERROR_ID]
        assert not findings[0].suppressible
