"""Fixture-snippet tests: each rule shown firing, staying quiet, and
being suppressed, per the positive/negative/suppression contract."""

from __future__ import annotations

import textwrap

from repro.staticcheck import check_source
from repro.staticcheck.rules import rules_for
from repro.staticcheck.rules.picklability import PicklabilityRule


def _check(source, module="repro.core.fixture", rule=None, **kwargs):
    rules = rules_for([rule]) if rule else None
    return check_source(
        textwrap.dedent(source), module=module, rules=rules, **kwargs)


def _ids(findings):
    return [f.rule_id for f in findings]


class TestR001Determinism:
    def test_module_level_random_flagged(self):
        findings = _check(
            """\
            import random
            x = random.random()
            """,
            rule="R001",
        )
        assert _ids(findings) == ["R001"]
        assert "hidden global" in findings[0].message

    def test_unseeded_random_factory_flagged_seeded_ok(self):
        bad = _check("import random\nrng = random.Random()\n", rule="R001")
        assert _ids(bad) == ["R001"]
        good = _check("import random\nrng = random.Random(1234)\n",
                      rule="R001")
        assert good == []

    def test_from_import_alias_tracked(self):
        findings = _check(
            """\
            from random import choice as pick
            winner = pick([1, 2, 3])
            """,
            rule="R001",
        )
        assert _ids(findings) == ["R001"]

    def test_wall_clock_flagged_perf_counter_ok(self):
        bad = _check("import time\nstamp = time.time()\n", rule="R001")
        assert _ids(bad) == ["R001"]
        good = _check("import time\nt0 = time.perf_counter()\n",
                      rule="R001")
        assert good == []

    def test_datetime_now_flagged(self):
        findings = _check(
            """\
            from datetime import datetime
            when = datetime.now()
            """,
            rule="R001",
        )
        assert _ids(findings) == ["R001"]

    def test_environ_reads_flagged(self):
        findings = _check(
            """\
            import os
            a = os.getenv("REPRO_X")
            b = os.environ["REPRO_Y"]
            """,
            rule="R001",
        )
        assert _ids(findings) == ["R001", "R001"]

    def test_testing_component_exempt(self):
        findings = _check(
            "import os\nfaults = os.environ.get('REPRO_FAULTS')\n",
            module="repro.testing.faults",
            rule="R001",
        )
        assert findings == []

    def test_entry_point_exempt(self):
        findings = _check(
            "import os\nseed = os.getenv('SEED')\n",
            module="repro.workloads.cli",
            path="src/repro/workloads/cli.py",
            rule="R001",
        )
        assert findings == []

    def test_suppression(self):
        findings = _check(
            "import time\n"
            "stamp = time.time()  # repro: allow[R001] report banner only\n",
            rule="R001",
        )
        assert findings == []


class TestR002Layering:
    def test_upward_import_flagged(self):
        findings = _check(
            "from repro.analysis import mrc\n",
            module="repro.workloads.generators",
            rule="R002",
        )
        assert _ids(findings) == ["R002"]
        assert "upward edge" in findings[0].message

    def test_downward_and_same_rank_ok(self):
        down = _check("from repro.cache import hierarchy\n",
                      module="repro.analysis.mrc", rule="R002")
        assert down == []
        lateral = _check("from repro.search import space\n",
                         module="repro.experiments.executor", rule="R002")
        assert lateral == []

    def test_experiments_ring_edges(self):
        # Downward ring edge: the executor may import a backend.
        down = _check(
            "from repro.experiments.backends import queue\n",
            module="repro.experiments.executor", rule="R002")
        assert down == []
        # Upward ring edge: a backend must not import the executor.
        up = _check(
            "from repro.experiments import executor\n",
            module="repro.experiments.backends.queue", rule="R002")
        assert _ids(up) == ["R002"]
        assert "ring" in up[0].message
        # The registry ring sits on top and may import everything.
        top = _check(
            "from repro.experiments.executor import prefetch_experiments\n",
            module="repro.experiments.report", rule="R002")
        assert top == []

    def test_experiments_unassigned_submodule_flagged(self):
        findings = _check(
            "x = 1\n", module="repro.experiments.frobnicator", rule="R002")
        assert _ids(findings) == ["R002"]
        assert "ring assignment" in findings[0].message

    def test_experiments_facade_symbols_exempt(self):
        # Plain symbols through the facade cannot be classified; only
        # names that are themselves ringed submodules are checked.
        ok = _check(
            "from repro.experiments import default_jobs\n",
            module="repro.experiments.backends.pool", rule="R002")
        assert ok == []

    def test_multicore_layer_edges(self):
        # multicore sits in the measurement layer: it may reach down into
        # cache/core, simulate may reach across, search may reach down...
        down = _check("from repro.cache import hierarchy\n",
                      module="repro.multicore.hierarchy", rule="R002")
        assert down == []
        lateral = _check("from repro.multicore import MulticoreHierarchy\n",
                         module="repro.simulate", rule="R002")
        assert lateral == []
        above = _check("from repro.multicore.config import MulticoreConfig\n",
                       module="repro.search.space", rule="R002")
        assert above == []
        # ...but mechanism must not depend on the contention layer.
        up = _check("from repro.multicore import interleave\n",
                    module="repro.workloads.generators", rule="R002")
        assert _ids(up) == ["R002"]
        assert "upward edge" in up[0].message

    def test_telemetry_imports_nothing_above(self):
        findings = _check(
            "from repro.core import base\n",
            module="repro.telemetry.metrics",
            rule="R002",
        )
        assert _ids(findings) == ["R002"]

    def test_from_repro_import_component(self):
        findings = _check(
            "from repro import experiments\n",
            module="repro.workloads.generators",
            rule="R002",
        )
        assert _ids(findings) == ["R002"]

    def test_relative_import_resolved(self):
        findings = _check(
            "from ..analysis import mrc\n",
            module="repro.workloads.generators",
            path="src/repro/workloads/generators.py",
            rule="R002",
        )
        assert _ids(findings) == ["R002"]

    def test_relative_import_in_package_init(self):
        # ``from .base import x`` inside repro/core/__init__.py resolves
        # against repro.core itself, not its parent.
        findings = _check(
            "from .base import MissFilter\n",
            module="repro.core",
            path="src/repro/core/__init__.py",
            rule="R002",
        )
        assert findings == []

    def test_type_checking_imports_ignored(self):
        findings = _check(
            """\
            from typing import TYPE_CHECKING
            if TYPE_CHECKING:
                from repro.experiments import base
            """,
            module="repro.analysis.mrc",
            rule="R002",
        )
        assert findings == []

    def test_unclassified_component_flagged(self):
        findings = _check(
            "import repro.mystery\n",
            module="repro.core.fixture",
            rule="R002",
        )
        assert _ids(findings) == ["R002"]
        assert "unclassified" in findings[0].message

    def test_entry_point_exempt(self):
        findings = _check(
            "from repro.experiments import runner\n",
            module="repro.workloads.cli",
            path="src/repro/workloads/cli.py",
            rule="R002",
        )
        assert findings == []

    def test_suppression(self):
        findings = _check(
            "# repro: allow[R002] transitional, tracked in ROADMAP\n"
            "from repro.analysis import mrc\n",
            module="repro.workloads.generators",
            rule="R002",
        )
        assert findings == []


class TestR003Picklability:
    def test_callable_annotation_flagged(self):
        findings = _check(
            """\
            from dataclasses import dataclass
            from typing import Callable

            @dataclass
            class Spec:
                name: str
                score: Callable[[int], float]
            """,
            module="repro.search.space",
            rule="R003",
        )
        assert _ids(findings) == ["R003"]
        assert "Callable" in findings[0].message

    def test_quoted_annotation_flagged(self):
        findings = _check(
            """\
            from dataclasses import dataclass

            @dataclass
            class Spec:
                score: "Callable[[int], float]"
            """,
            module="repro.experiments.planning",
            rule="R003",
        )
        assert _ids(findings) == ["R003"]

    def test_lambda_default_flagged(self):
        findings = _check(
            """\
            from dataclasses import dataclass

            @dataclass
            class Spec:
                scale: int = 1
                fn = lambda x: x
            """,
            module="repro.search.space",
            rule="R003",
        )
        assert _ids(findings) == ["R003"]

    def test_self_lambda_and_nested_function_flagged(self):
        findings = _check(
            """\
            from dataclasses import dataclass

            @dataclass
            class Spec:
                name: str

                def bind(self):
                    def helper(x):
                        return x
                    self.hook = lambda v: v
                    self.helper = helper
            """,
            module="repro.search.space",
            rule="R003",
        )
        assert _ids(findings) == ["R003", "R003"]

    def test_plain_data_ok(self):
        findings = _check(
            """\
            from dataclasses import dataclass
            from typing import Optional, Tuple

            @dataclass(frozen=True)
            class Spec:
                name: str
                sizes: Tuple[int, ...]
                seed: Optional[int] = None
            """,
            module="repro.search.space",
            rule="R003",
        )
        assert findings == []

    def test_non_boundary_module_ignored(self):
        findings = _check(
            """\
            from dataclasses import dataclass
            from typing import Callable

            @dataclass
            class Design:
                build: Callable[[], object]
            """,
            module="repro.core.machine",
            rule="R003",
        )
        assert findings == []

    def test_boundary_set_is_overridable(self):
        rule = PicklabilityRule(
            boundary_modules=frozenset({"repro.core.machine"}))
        findings = check_source(
            textwrap.dedent(
                """\
                from dataclasses import dataclass
                from typing import Callable

                @dataclass
                class Design:
                    build: Callable[[], object]
                """
            ),
            module="repro.core.machine",
            rules=[rule],
        )
        assert _ids(findings) == ["R003"]

    def test_suppression(self):
        findings = _check(
            """\
            from dataclasses import dataclass
            from typing import Callable

            @dataclass
            class Spec:
                # repro: allow[R003] resolved to a dotted path before submit
                score: Callable[[int], float]
            """,
            module="repro.search.space",
            rule="R003",
        )
        assert findings == []


class TestR004ExceptionHygiene:
    def test_bare_except_flagged_and_unsuppressible(self):
        findings = _check(
            """\
            try:
                work()
            except:  # repro: allow[R004] trying to silence anyway
                pass
            """,
            rule="R004",
        )
        assert _ids(findings) == ["R004"]
        assert "not suppressible" in findings[0].message

    def test_broad_except_needs_rationale(self):
        naked = _check(
            """\
            try:
                work()
            except Exception:
                pass
            """,
            rule="R004",
        )
        assert _ids(naked) == ["R004"]
        no_rationale = _check(
            """\
            try:
                work()
            except Exception:  # repro: allow[R004]
                pass
            """,
            rule="R004",
        )
        assert _ids(no_rationale) == ["R004"]
        assert "rationale" in no_rationale[0].message
        with_rationale = _check(
            """\
            try:
                work()
            except Exception:  # repro: allow[R004] triaged by is_retryable
                pass
            """,
            rule="R004",
        )
        assert with_rationale == []

    def test_broad_except_in_tuple_flagged(self):
        findings = _check(
            """\
            try:
                work()
            except (ValueError, Exception):
                pass
            """,
            rule="R004",
        )
        assert _ids(findings) == ["R004"]

    def test_reraise_is_clean(self):
        findings = _check(
            """\
            try:
                work()
            except Exception:
                cleanup()
                raise
            """,
            rule="R004",
        )
        assert findings == []

    def test_precise_except_ok(self):
        findings = _check(
            """\
            try:
                work()
            except (ValueError, KeyError):
                recover()
            """,
            rule="R004",
        )
        assert findings == []

    def test_raise_generic_exception_flagged(self):
        findings = _check("raise Exception('boom')\n", rule="R004")
        assert _ids(findings) == ["R004"]

    def test_runtime_error_in_experiments_flagged(self):
        inside = _check(
            "raise RuntimeError('task failed')\n",
            module="repro.experiments.runner",
            rule="R004",
        )
        assert _ids(inside) == ["R004"]
        assert "taxonomy" in inside[0].message
        outside = _check(
            "raise RuntimeError('validation bypassed')\n",
            module="repro.cache.hierarchy",
            rule="R004",
        )
        assert outside == []

    def test_taxonomy_raise_in_experiments_ok(self):
        findings = _check(
            """\
            from repro.experiments.resilience import TaskExecutionError

            def fail():
                raise TaskExecutionError('task', 'final failure')
            """,
            module="repro.experiments.runner",
            rule="R004",
        )
        assert findings == []


class TestR005Asserts:
    def test_assert_flagged(self):
        findings = _check("assert cache is not None\n", rule="R005")
        assert _ids(findings) == ["R005"]
        assert "python -O" in findings[0].message

    def test_testing_component_exempt(self):
        findings = _check(
            "assert cache is not None\n",
            module="repro.testing.helpers",
            rule="R005",
        )
        assert findings == []

    def test_explicit_raise_ok(self):
        findings = _check(
            """\
            if cache is None:
                raise ValueError("cache is required")
            """,
            rule="R005",
        )
        assert findings == []

    def test_suppression(self):
        findings = _check(
            "assert isinstance(x, int)  # repro: allow[R005] type narrowing\n",
            rule="R005",
        )
        assert findings == []


class TestR006MNMSoundness:
    def test_query_override_without_super_flagged(self):
        findings = _check(
            """\
            from repro.core.machine import MostlyNoMachine

            class FastMNM(MostlyNoMachine):
                def query(self, level, addr):
                    return True  # optimistic miss bit, never proved
            """,
            rule="R006",
        )
        assert _ids(findings) == ["R006"]
        assert "audited" in findings[0].message

    def test_query_override_via_super_ok(self):
        findings = _check(
            """\
            from repro.core.machine import MostlyNoMachine

            class CountingMNM(MostlyNoMachine):
                def query(self, level, addr):
                    self.calls += 1
                    return super().query(level, addr)
            """,
            rule="R006",
        )
        assert findings == []

    def test_query_override_via_base_call_ok(self):
        findings = _check(
            """\
            from repro.core.machine import MostlyNoMachine

            class TracingMNM(MostlyNoMachine):
                def query(self, level, addr):
                    return MostlyNoMachine.query(self, level, addr)
            """,
            rule="R006",
        )
        assert findings == []

    def test_inherited_query_ok(self):
        findings = _check(
            """\
            from repro.core.machine import MostlyNoMachine

            class NamedMNM(MostlyNoMachine):
                label = "named"
            """,
            rule="R006",
        )
        assert findings == []

    def test_incomplete_filter_flagged(self):
        findings = _check(
            """\
            from repro.core.base import MissFilter

            class HalfFilter(MissFilter):
                def is_definite_miss(self, addr):
                    return False

                def on_place(self, addr):
                    pass
            """,
            rule="R006",
        )
        assert _ids(findings) == ["R006"]
        assert "on_replace" in findings[0].message
        assert "storage_bits" in findings[0].message

    def test_complete_filter_ok(self):
        findings = _check(
            """\
            from repro.core.base import MissFilter

            class FullFilter(MissFilter):
                def is_definite_miss(self, addr):
                    return False

                def on_place(self, addr):
                    pass

                def on_replace(self, addr):
                    pass

                @property
                def storage_bits(self):
                    return 0
            """,
            rule="R006",
        )
        assert findings == []

    def test_abstract_intermediate_filter_ok(self):
        findings = _check(
            """\
            from abc import abstractmethod
            from repro.core.base import MissFilter

            class IndexedFilter(MissFilter):
                @abstractmethod
                def index_of(self, addr):
                    ...
            """,
            rule="R006",
        )
        assert findings == []

    def test_duck_typed_filter_flagged(self):
        findings = _check(
            """\
            class SneakyFilter:
                def is_definite_miss(self, addr):
                    return True

                def on_place(self, addr):
                    pass
            """,
            rule="R006",
        )
        assert _ids(findings) == ["R006"]
        assert "duck" in findings[0].message

    def test_partial_duck_shape_ok(self):
        findings = _check(
            """\
            class JustAStatsBag:
                def is_definite_miss(self, addr):
                    return False
            """,
            rule="R006",
        )
        assert findings == []

    def test_suppression(self):
        findings = _check(
            """\
            # repro: allow[R006] internal building block, audited elsewhere
            class Helper:
                def is_definite_miss(self, addr):
                    return True

                def on_place(self, addr):
                    pass
            """,
            rule="R006",
        )
        assert findings == []

    # -------------------------- batched queries (query_many) on the surface

    def test_machine_query_many_override_without_super_flagged(self):
        findings = _check(
            """\
            from repro.core.machine import MostlyNoMachine

            class BatchedMNM(MostlyNoMachine):
                def query_many(self, addresses, kinds):
                    return [[True] * 3 for _ in addresses]
            """,
            rule="R006",
        )
        assert _ids(findings) == ["R006"]
        assert "query_many" in findings[0].message

    def test_machine_query_many_override_via_super_ok(self):
        findings = _check(
            """\
            from repro.core.machine import MostlyNoMachine

            class CountingMNM(MostlyNoMachine):
                def query_many(self, addresses, kinds):
                    self.batches += 1
                    return super().query_many(addresses, kinds)
            """,
            rule="R006",
        )
        assert findings == []

    def test_filter_subclass_query_many_without_scalar_flagged(self):
        """Re-vectorizing only the batch of a concrete filter can drift
        from the inherited scalar semantics without any test noticing."""
        findings = _check(
            """\
            from repro.core.tmnm import TMNM

            class TunedTMNM(TMNM):
                def query_many(self, granule_addrs):
                    return [False] * len(granule_addrs)
            """,
            rule="R006",
        )
        assert _ids(findings) == ["R006"]
        assert "scalar" in findings[0].message

    def test_filter_subclass_query_many_with_scalar_ok(self):
        findings = _check(
            """\
            from repro.core.tmnm import TMNM

            class PairedTMNM(TMNM):
                def is_definite_miss(self, granule_addr):
                    return super().is_definite_miss(granule_addr)

                def query_many(self, granule_addrs):
                    miss = self.is_definite_miss
                    return [miss(granule) for granule in granule_addrs]
            """,
            rule="R006",
        )
        assert findings == []

    def test_duck_filter_via_query_many_flagged(self):
        """The batched entry point alone is enough to quack like a
        filter — wiring it in would dodge the ABC-keyed soundness tests."""
        findings = _check(
            """\
            class BatchOnlyFilter:
                def query_many(self, granule_addrs):
                    return [True] * len(granule_addrs)

                def on_place(self, addr):
                    pass
            """,
            rule="R006",
        )
        assert _ids(findings) == ["R006"]
        assert "duck" in findings[0].message

    def test_query_many_pairing_suppressible(self):
        findings = _check(
            """\
            # repro: allow[R006] building block, audited through its owner
            class BatchHelper:
                def query_many(self, granule_addrs):
                    return [False] * len(granule_addrs)
            """,
            rule="R006",
        )
        assert findings == []

    # ----------------- cross-core invalidation downgrade (on_invalidate)

    def test_machine_on_invalidate_without_super_flagged(self):
        findings = _check(
            """\
            from repro.core.machine import MostlyNoMachine

            class QuietMNM(MostlyNoMachine):
                def on_invalidate(self, granule_addr):
                    pass  # swallows the downgrade: contention -> false miss
            """,
            rule="R006",
        )
        assert _ids(findings) == ["R006"]
        assert "on_invalidate" in findings[0].message
        assert "false miss" in findings[0].message

    def test_machine_on_invalidate_via_super_ok(self):
        findings = _check(
            """\
            from repro.core.machine import MostlyNoMachine

            class CountingMNM(MostlyNoMachine):
                def on_invalidate(self, granule_addr):
                    self.invalidations += 1
                    super().on_invalidate(granule_addr)
            """,
            rule="R006",
        )
        assert findings == []

    def test_filter_on_invalidate_without_super_flagged(self):
        findings = _check(
            """\
            from repro.core.base import MissFilter

            class LazyFilter(MissFilter):
                def is_definite_miss(self, addr):
                    return False

                def on_place(self, addr):
                    pass

                def on_replace(self, addr):
                    pass

                @property
                def storage_bits(self):
                    return 0

                def on_invalidate(self, granule_addr):
                    return None  # drops the conservative downgrade
            """,
            rule="R006",
        )
        assert _ids(findings) == ["R006"]
        assert "on_invalidate" in findings[0].message

    def test_filter_on_invalidate_via_base_call_ok(self):
        findings = _check(
            """\
            from repro.core.base import MissFilter

            class TracingFilter(MissFilter):
                def is_definite_miss(self, addr):
                    return False

                def on_place(self, addr):
                    pass

                def on_replace(self, addr):
                    pass

                @property
                def storage_bits(self):
                    return 0

                def on_invalidate(self, granule_addr):
                    self.seen.append(granule_addr)
                    MissFilter.on_invalidate(self, granule_addr)
            """,
            rule="R006",
        )
        assert findings == []

    def test_inherited_on_invalidate_ok(self):
        findings = _check(
            """\
            from repro.core.machine import MostlyNoMachine

            class PlainMNM(MostlyNoMachine):
                label = "plain"
            """,
            rule="R006",
        )
        assert findings == []

    def test_on_invalidate_suppressible(self):
        findings = _check(
            """\
            from repro.core.machine import MostlyNoMachine

            class ShadowMNM(MostlyNoMachine):
                # repro: allow[R006] downgrade handled by a paired shadow bank
                def on_invalidate(self, granule_addr):
                    self.shadow.on_invalidate(granule_addr)
            """,
            rule="R006",
        )
        assert findings == []
