"""Fixture triples for the contract-aware rules R007–R010.

Every rule is shown firing, staying quiet, and being suppressed — the
same positive/negative/suppression contract ``test_rules.py`` pins for
R001–R006 — plus the decorated-definition suppression fix.
"""

from __future__ import annotations

import ast
import textwrap

from repro.staticcheck import check_source, check_sources, rules_for
from repro.staticcheck.rules.base import Rule
from repro.staticcheck.rules.cache_keys import CacheKeyRule, KeyBinding


def _check(source, module="repro.core.fixture", rule=None, **kwargs):
    rules = rules_for([rule]) if rule else None
    return check_source(
        textwrap.dedent(source), module=module, rules=rules, **kwargs)


def _ids(findings):
    return [f.rule_id for f in findings]


# ---------------------------------------------------------------------------
# R007 — cache-key completeness
# ---------------------------------------------------------------------------

_BINDING = KeyBinding(
    builder_module="repro.experiments.fixture_keys",
    builder="fingerprint_config",
    param="config",
    dataclass_module="repro.experiments.fixture_config",
    dataclass_name="FixtureConfig",
)

_CONFIG_TEMPLATE = """\
from dataclasses import dataclass


@dataclass(frozen=True)
class FixtureConfig:
    depth: int = 1
    width: int = 2{extra}
"""


def _check_r007(builder_body, extra_field=""):
    rule = CacheKeyRule(bindings=(_BINDING,))
    return check_sources(
        {
            "fixture_config.py": _CONFIG_TEMPLATE.format(extra=extra_field),
            "fixture_keys.py": textwrap.dedent(builder_body),
        },
        modules={
            "fixture_config.py": "repro.experiments.fixture_config",
            "fixture_keys.py": "repro.experiments.fixture_keys",
        },
        rules=[rule],
    )


class TestR007CacheKeys:
    def test_dropped_field_fires_at_the_field(self):
        findings = _check_r007(
            """\
            def fingerprint_config(config):
                return f"depth={config.depth}"
            """,
        )
        assert _ids(findings) == ["R007"]
        assert findings[0].path == "fixture_config.py"
        assert "'width'" in findings[0].message
        assert findings[0].requires_rationale

    def test_full_coverage_is_quiet(self):
        findings = _check_r007(
            """\
            def fingerprint_config(config):
                return f"depth={config.depth}|width={config.width}"
            """,
        )
        assert findings == []

    def test_whole_object_repr_covers_everything(self):
        findings = _check_r007(
            """\
            def fingerprint_config(config):
                return repr(config)
            """,
        )
        assert findings == []

    def test_rationale_suppression_silences(self):
        findings = _check_r007(
            """\
            def fingerprint_config(config):
                return f"depth={config.depth}"
            """,
            extra_field=(
                "\n    # repro: allow[R007] display-only knob, never "
                "changes simulation output\n    label: str = \"x\""),
        )
        assert [f.message for f in findings
                if "'label'" in f.message] == []
        # width is still uncovered and unsuppressed.
        assert _ids(findings) == ["R007"]

    def test_bare_marker_without_rationale_stays_alive(self):
        findings = _check_r007(
            """\
            def fingerprint_config(config):
                return f"depth={config.depth}|width={config.width}"
            """,
            extra_field="\n    # repro: allow[R007]\n    label: str = \"x\"",
        )
        assert _ids(findings) == ["R007"]
        assert "rationale" in findings[0].message

    def test_missing_builder_is_itself_a_finding(self):
        rule = CacheKeyRule(bindings=(_BINDING,))
        findings = check_sources(
            {
                "fixture_config.py": _CONFIG_TEMPLATE.format(extra=""),
                "fixture_keys.py": "def unrelated():\n    return 1\n",
            },
            modules={
                "fixture_config.py": "repro.experiments.fixture_config",
                "fixture_keys.py": "repro.experiments.fixture_keys",
            },
            rules=[rule],
        )
        assert _ids(findings) == ["R007"]
        assert "fingerprint_config" in findings[0].message

    def test_absent_modules_prove_nothing(self):
        rule = CacheKeyRule(bindings=(_BINDING,))
        findings = check_sources(
            {"other.py": "x = 1\n"},
            modules={"other.py": "repro.core.other"},
            rules=[rule],
        )
        assert findings == []

    def test_default_bindings_cover_the_real_key_builders(self):
        builders = {binding.builder for binding in CacheKeyRule().bindings}
        assert builders == {
            "fingerprint_settings", "fingerprint_design",
            "fingerprint_hierarchy", "MulticoreConfig.fingerprint",
        }


# ---------------------------------------------------------------------------
# R008 — byte-identity hazards
# ---------------------------------------------------------------------------

class TestR008ByteIdentity:
    def test_join_over_set_fires(self):
        findings = _check(
            'names = ",".join({"b", "a"})\n', rule="R008")
        assert _ids(findings) == ["R008"]
        assert "hash seed" in findings[0].message

    def test_for_loop_over_set_call_fires(self):
        findings = _check(
            """\
            def merge(results):
                for key in set(results):
                    print(key)
            """,
            rule="R008",
        )
        assert _ids(findings) == ["R008"]

    def test_listdir_comprehension_fires(self):
        findings = _check(
            """\
            import os

            def entries(root):
                return [name for name in os.listdir(root)]
            """,
            rule="R008",
        )
        assert _ids(findings) == ["R008"]
        assert "filesystem enumeration" in findings[0].message

    def test_sum_over_set_fires_float_accumulation(self):
        findings = _check(
            "total = sum({0.1, 0.2, 0.3})\n",
            module="repro.kernel.fixture", rule="R008")
        assert _ids(findings) == ["R008"]

    def test_sorted_wrapping_is_quiet(self):
        findings = _check(
            """\
            import os

            def entries(root):
                ordered = sorted(name for name in os.listdir(root))
                return ",".join(sorted({"b", "a"})) + str(ordered)
            """,
            rule="R008",
        )
        assert findings == []

    def test_membership_and_len_are_quiet(self):
        findings = _check(
            """\
            def stats(seen):
                tracked = {"a", "b"}
                return len(tracked), ("a" in tracked)
            """,
            rule="R008",
        )
        assert findings == []

    def test_dict_values_iteration_is_quiet(self):
        findings = _check(
            """\
            def render(table):
                return ",".join(table.values())
            """,
            rule="R008",
        )
        assert findings == []

    def test_set_algebra_propagates(self):
        findings = _check(
            """\
            def diff(left, right):
                for name in set(left) - set(right):
                    print(name)
            """,
            rule="R008",
        )
        assert _ids(findings) == ["R008"]

    def test_test_code_exempt(self):
        findings = _check(
            'order = list({"b", "a"})\n',
            module=None, path="tests/test_fixture.py", rule="R008")
        assert findings == []

    def test_suppression_silences(self):
        findings = _check(
            'order = list({"b", "a"})  # repro: allow[R008] membership only\n',
            rule="R008",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# R009 — filesystem atomicity
# ---------------------------------------------------------------------------

def _check_r009(source, module="repro.experiments.backends.fixture"):
    return _check(source, module=module, rule="R009")


class TestR009Atomicity:
    def test_bare_write_open_fires_in_backends(self):
        findings = _check_r009(
            """\
            def save(path, data):
                with open(path, "w") as handle:
                    handle.write(data)
            """,
        )
        assert _ids(findings) == ["R009"]
        assert findings[0].requires_rationale

    def test_append_mode_fires(self):
        findings = _check_r009(
            'handle = open("log.txt", mode="a")\n')
        assert _ids(findings) == ["R009"]

    def test_os_open_write_flags_fire(self):
        findings = _check_r009(
            """\
            import os
            fd = os.open("x", os.O_WRONLY | os.O_CREAT | os.O_EXCL)
            """,
        )
        assert _ids(findings) == ["R009"]

    def test_path_write_text_fires(self):
        findings = _check_r009(
            """\
            from pathlib import Path
            Path("x").write_text("data")
            """,
        )
        assert _ids(findings) == ["R009"]

    def test_reads_are_quiet(self):
        findings = _check_r009(
            """\
            import os

            def load(path):
                with open(path) as handle:
                    return handle.read()

            def load_binary(path):
                with open(path, "rb") as handle:
                    return handle.read()
            """,
        )
        assert findings == []

    def test_unscoped_modules_are_quiet(self):
        findings = _check(
            'handle = open("out.txt", "w")\n',
            module="repro.analysis.fixture", rule="R009")
        assert findings == []

    def test_blessed_helper_module_exempt(self):
        findings = _check(
            'handle = open("x.tmp", "wb")\n',
            module="repro.experiments.atomic", rule="R009")
        assert findings == []

    def test_rationale_suppression_silences(self):
        findings = _check_r009(
            'handle = open("log", "a")  '
            "# repro: allow[R009] append-only diagnostic log\n")
        assert findings == []

    def test_bare_marker_without_rationale_stays_alive(self):
        findings = _check_r009(
            'handle = open("log", "a")  # repro: allow[R009]\n')
        assert _ids(findings) == ["R009"]
        assert "rationale" in findings[0].message

    def test_non_literal_mode_skipped(self):
        findings = _check_r009(
            """\
            def reopen(path, mode):
                return open(path, mode)
            """,
        )
        assert findings == []

    def test_checkpoint_and_passcache_scoped(self):
        for module in ("repro.experiments.passcache",
                       "repro.experiments.checkpoint",
                       "repro.obs.manifest"):
            findings = _check(
                'open("x", "w")\n', module=module, rule="R009")
            assert _ids(findings) == ["R009"], module


# ---------------------------------------------------------------------------
# R010 — telemetry naming + manifest key registry
# ---------------------------------------------------------------------------

class TestR010TelemetryNaming:
    def test_bad_constant_name_fires(self):
        findings = _check(
            """\
            import repro.telemetry as telemetry
            telemetry.get_registry().counter("CacheHits").inc()
            """,
            rule="R010",
        )
        assert _ids(findings) == ["R010"]
        assert "dotted grammar" in findings[0].message

    def test_single_segment_fires(self):
        findings = _check(
            'registry.counter("hits").inc()\n', rule="R010")
        assert _ids(findings) == ["R010"]

    def test_good_names_are_quiet(self):
        findings = _check(
            """\
            registry.counter("cache.pass.disk.write_race").inc()
            registry.gauge("queue.lease.claimed").set(1)
            registry.histogram("executor.serial_fallback").observe(2)
            """,
            rule="R010",
        )
        assert findings == []

    def test_fstring_skeleton_validated(self):
        good = _check(
            'registry.counter(f"cache.pass.disk.{what}").inc()\n',
            rule="R010")
        assert good == []
        bad = _check(
            'registry.counter(f"Cache {what}").inc()\n', rule="R010")
        assert _ids(bad) == ["R010"]

    def test_concat_skeleton_validated(self):
        good = _check(
            'registry.counter(base + ".probes").inc()\n', rule="R010")
        assert good == []

    def test_fully_dynamic_name_skipped(self):
        findings = _check(
            'registry.counter(pick_name()).inc()\n', rule="R010")
        assert findings == []

    def test_suppression_silences(self):
        findings = _check(
            'registry.counter("Legacy")  # repro: allow[R010] external name\n',
            rule="R010")
        assert findings == []

    def test_manifest_registry_mismatch_fires_both_ways(self):
        source = """\
            MANIFEST_KEYS = frozenset({"schema", "ghost"})


            def build_manifest():
                return {"schema": 1, "novel": 2}
            """
        findings = _check(source, module="repro.obs.manifest", rule="R010")
        messages = " / ".join(f.message for f in findings)
        assert _ids(findings) == ["R010", "R010"]
        assert "'novel'" in messages and "'ghost'" in messages

    def test_missing_registry_fires(self):
        findings = _check(
            """\
            def build_manifest():
                return {"schema": 1}
            """,
            module="repro.obs.manifest", rule="R010")
        assert _ids(findings) == ["R010"]
        assert "MANIFEST_KEYS" in findings[0].message

    def test_matching_registry_quiet(self):
        findings = _check(
            """\
            MANIFEST_KEYS = frozenset({"schema", "status"})


            def build_manifest():
                return {"schema": 1, "status": "ok"}
            """,
            module="repro.obs.manifest", rule="R010")
        assert findings == []

    def test_other_modules_need_no_registry(self):
        findings = _check(
            """\
            def build_manifest():
                return {"schema": 1}
            """,
            module="repro.obs.other", rule="R010")
        assert findings == []


# ---------------------------------------------------------------------------
# Decorated-definition suppressions (the satellite fix)
# ---------------------------------------------------------------------------

class _DefAnchoredRule(Rule):
    """Fixture rule: one finding anchored at every def/class statement.

    Mirrors the anchoring shape of project rules whose findings land on
    decorated definitions, so decorated-marker coverage is tested on the
    engine mechanism itself rather than on one rule's incidental anchor.
    """

    rule_id = "R999"
    title = "fixture: flags every definition"
    hint = ""

    def check(self, module):
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                yield self.finding(module, node, f"definition {node.name}")


def _check_defs(source):
    return check_source(textwrap.dedent(source),
                        module="repro.core.fixture",
                        rules=[_DefAnchoredRule()])


class TestDecoratedSuppressions:
    def test_marker_above_decorator_covers_the_def(self):
        findings = _check_defs(
            """\
            import functools


            # repro: allow[R999] fixture marker above the decorator
            @functools.lru_cache
            def helper():
                return 1
            """,
        )
        assert findings == []

    def test_marker_inline_on_decorator_covers_the_def(self):
        findings = _check_defs(
            """\
            import functools


            @functools.lru_cache  # repro: allow[R999] fixture marker
            def helper():
                return 1
            """,
        )
        assert findings == []

    def test_marker_between_stacked_decorators_covers_the_class(self):
        findings = _check_defs(
            """\
            import functools


            @functools.wraps(object)
            # repro: allow[R999] fixture marker between decorators
            @functools.lru_cache
            class Spec:
                pass
            """,
        )
        assert [f for f in findings if "Spec" in f.message] == []

    def test_undecorated_def_not_covered_from_two_lines_up(self):
        # Without a decorator stack there is nothing to extend: a marker
        # two lines above a plain def must NOT silence it.
        findings = _check_defs(
            """\
            # repro: allow[R999] too far away
            x = 1
            def helper():
                return 1
            """,
        )
        assert _ids(findings) == ["R999"]

    def test_decorated_marker_does_not_leak_to_body_or_siblings(self):
        findings = _check_defs(
            """\
            import functools


            @functools.lru_cache  # repro: allow[R999] covers helper only
            def helper():
                def inner():
                    return 1
                return inner


            def sibling():
                return 2
            """,
        )
        assert sorted(f.message for f in findings) == [
            "definition inner", "definition sibling"]
