"""Tests for the deterministic fault-injection harness.

Everything here is pure-function territory: selection, firing and
corruption must be exactly reproducible from the spec — that is what
lets the chaos tests in ``tests/experiments/test_resilience.py`` assert
byte-identical reports instead of merely "it probably recovered".
"""

import pytest

from repro.experiments.base import ExperimentSettings
from repro.testing.faults import (
    FaultInjector,
    FaultSpec,
    InjectedFault,
    configure_faults,
    corrupt_bytes,
    env_fault_spec,
    get_injector,
    parse_fault_spec,
    resolve_fault_spec,
)


@pytest.fixture(autouse=True)
def no_ambient_faults(monkeypatch):
    """Tests control the injector and environment explicitly."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    configure_faults(None)
    yield
    configure_faults(None)


class TestParsing:
    def test_shorthand_task_kinds(self):
        for kind in ("raise", "hang", "exit", "interrupt"):
            (spec,) = parse_fault_spec(kind)
            assert spec.site == "task"
            assert spec.kind == kind

    def test_shorthand_corrupt_targets_cache_write(self):
        (spec,) = parse_fault_spec("corrupt")
        assert spec.site == "cache-write"
        assert spec.kind == "corrupt"

    def test_shorthand_sigkill_targets_task(self):
        (spec,) = parse_fault_spec("sigkill")
        assert spec.site == "task"
        assert spec.kind == "sigkill"

    def test_shorthand_stall_targets_lease(self):
        (spec,) = parse_fault_spec("stall")
        assert spec.site == "lease"
        assert spec.kind == "stall"

    def test_shorthand_steal_targets_claim(self):
        (spec,) = parse_fault_spec("steal")
        assert spec.site == "claim"
        assert spec.kind == "steal"

    def test_torn_has_no_shorthand(self):
        """``torn`` is ambiguous (queue-write vs journal-write): JSON only."""
        with pytest.raises(ValueError):
            parse_fault_spec("torn")
        (spec,) = parse_fault_spec('{"site": "queue-write", "kind": "torn"}')
        assert spec.site == "queue-write"
        (spec,) = parse_fault_spec(
            '{"site": "journal-write", "kind": "torn"}')
        assert spec.site == "journal-write"

    def test_fleet_kinds_are_site_checked(self):
        with pytest.raises(ValueError):
            FaultSpec(site="lease", kind="steal")  # claim-only kind
        with pytest.raises(ValueError):
            FaultSpec(site="claim", kind="stall")  # lease-only kind
        with pytest.raises(ValueError):
            FaultSpec(site="task", kind="torn")

    def test_json_object(self):
        (spec,) = parse_fault_spec(
            '{"site": "task", "kind": "raise", "fail_attempts": 2, '
            '"rate": 0.5, "seed": 7}')
        assert spec.fail_attempts == 2
        assert spec.rate == 0.5
        assert spec.seed == 7

    def test_json_list_of_rules(self):
        specs = parse_fault_spec(
            '[{"site": "task", "kind": "raise"},'
            ' {"site": "cache-write", "kind": "corrupt"}]')
        assert [spec.site for spec in specs] == ["task", "cache-write"]

    def test_empty_spec_means_no_rules(self):
        assert parse_fault_spec("") == ()
        assert parse_fault_spec("   ") == ()

    def test_typos_fail_loudly(self):
        """A chaos spec that silently tests nothing is worse than none."""
        with pytest.raises(ValueError):
            parse_fault_spec("riase")
        with pytest.raises(ValueError):
            parse_fault_spec('{"site": "task", "kind": "raise"')  # bad JSON
        with pytest.raises(ValueError):
            parse_fault_spec('{"site": "task", "kind": "raise", "bogus": 1}')
        with pytest.raises(ValueError):
            parse_fault_spec('["raise"]')  # entries must be objects

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(site="network", kind="raise")
        with pytest.raises(ValueError):
            FaultSpec(site="task", kind="corrupt")  # cache-only kind
        with pytest.raises(ValueError):
            FaultSpec(site="task", kind="raise", rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(site="task", kind="raise", fail_attempts=-1)


class TestSelection:
    KEYS = [f"pass|wl{i}|hier|designs" for i in range(200)]

    def test_selection_is_deterministic(self):
        spec = FaultSpec(site="task", kind="raise", rate=0.5, seed=3)
        again = FaultSpec(site="task", kind="raise", rate=0.5, seed=3)
        assert ([spec.selects(key) for key in self.KEYS]
                == [again.selects(key) for key in self.KEYS])

    def test_rate_bounds(self):
        everyone = FaultSpec(site="task", kind="raise", rate=1.0)
        nobody = FaultSpec(site="task", kind="raise", rate=0.0)
        assert all(everyone.selects(key) for key in self.KEYS)
        assert not any(nobody.selects(key) for key in self.KEYS)

    def test_partial_rate_selects_a_strict_subset(self):
        spec = FaultSpec(site="task", kind="raise", rate=0.5)
        picked = sum(spec.selects(key) for key in self.KEYS)
        assert 0 < picked < len(self.KEYS)

    def test_different_seeds_pick_different_victims(self):
        a = FaultSpec(site="task", kind="raise", rate=0.5, seed=1)
        b = FaultSpec(site="task", kind="raise", rate=0.5, seed=2)
        assert ([a.selects(key) for key in self.KEYS]
                != [b.selects(key) for key in self.KEYS])

    def test_match_restricts_eligibility(self):
        spec = FaultSpec(site="task", kind="raise", match="twolf")
        assert spec.selects("pass|twolf|hier")
        assert not spec.selects("pass|gcc|hier")

    def test_fires_converges_after_fail_attempts(self):
        """The knob that lets chaos runs finish: attempts past the budget
        succeed."""
        spec = FaultSpec(site="task", kind="raise", fail_attempts=2)
        assert spec.fires("key", 1)
        assert spec.fires("key", 2)
        assert not spec.fires("key", 3)

    def test_zero_fail_attempts_disables_the_rule(self):
        spec = FaultSpec(site="task", kind="raise", fail_attempts=0)
        assert not spec.fires("key", 1)


class TestInjector:
    def test_raise_kind_raises_a_retryable_fault(self):
        injector = FaultInjector(parse_fault_spec("raise"))
        with pytest.raises(InjectedFault):
            injector.on_task_start("key", 1)
        injector.on_task_start("key", 2)  # past fail_attempts: no fault

    def test_interrupt_kind_raises_keyboard_interrupt(self):
        injector = FaultInjector(parse_fault_spec("interrupt"))
        with pytest.raises(KeyboardInterrupt):
            injector.on_task_start("key", 1)

    def test_set_attempt_feeds_sites_without_explicit_attempts(self):
        injector = FaultInjector(parse_fault_spec("corrupt"))
        assert injector.should_corrupt("key")
        injector.set_attempt(2)
        assert not injector.should_corrupt("key")

    def test_configure_installs_and_clears_the_singleton(self):
        assert get_injector() is None
        injector = configure_faults("raise")
        assert get_injector() is injector
        configure_faults(None)
        assert get_injector() is None

    def test_configure_empty_spec_disables(self):
        assert configure_faults("") is None

    def test_lease_stall_selector(self):
        injector = FaultInjector(parse_fault_spec(
            '{"site": "lease", "kind": "stall", "fail_attempts": 2}'))
        assert injector.lease_stall("key", 1)
        assert injector.lease_stall("key", 2)
        assert not injector.lease_stall("key", 3)  # converges
        assert not injector.claim_steal("key", 1)  # other sites untouched
        assert not injector.should_tear("queue-write", "key", 1)

    def test_claim_steal_selector(self):
        injector = FaultInjector(parse_fault_spec("steal"))
        assert injector.claim_steal("key", 1)
        assert not injector.claim_steal("key", 2)
        assert not injector.lease_stall("key", 1)

    def test_should_tear_distinguishes_sites(self):
        injector = FaultInjector(parse_fault_spec(
            '{"site": "journal-write", "kind": "torn"}'))
        assert injector.should_tear("journal-write", "key", 1)
        assert not injector.should_tear("queue-write", "key", 1)

    def test_queue_site_selectors_use_the_ambient_attempt(self):
        injector = FaultInjector(parse_fault_spec("stall"))
        assert injector.lease_stall("key")
        injector.set_attempt(2)
        assert not injector.lease_stall("key")


class TestCorruptBytes:
    def test_garbled_output_is_deterministic_and_marked(self):
        data = b"x" * 100
        garbled = corrupt_bytes(data)
        assert garbled == corrupt_bytes(data)
        assert garbled != data
        assert garbled.endswith(b"REPRO-FAULT-CORRUPT")

    def test_tiny_inputs_still_change(self):
        assert corrupt_bytes(b"a") != b"a"


class TestResolution:
    def test_env_var_is_the_ambient_spec(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "raise")
        assert env_fault_spec() == "raise"
        assert resolve_fault_spec(None) == "raise"

    def test_settings_win_over_the_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "raise")
        settings = ExperimentSettings(
            num_instructions=4000, fault_spec="corrupt")
        assert resolve_fault_spec(settings) == "corrupt"

    def test_unset_everywhere_is_empty(self):
        assert resolve_fault_spec(ExperimentSettings(
            num_instructions=4000)) == ""
