"""Metrics registry semantics: counters, gauges, histograms, null mode."""

import json

import pytest

from repro import telemetry
from repro.telemetry import (
    NULL_REGISTRY,
    Counter,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("x")
        assert counter.value == 0
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_reset(self):
        counter = Counter("x")
        counter.inc(7)
        counter.reset()
        assert counter.value == 0


class TestGauge:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(1.5)
        gauge.set(2.5)
        assert registry.snapshot()["gauges"]["g"] == 2.5


class TestHistogram:
    def test_bucket_boundaries_are_inclusive_upper_edges(self):
        histogram = Histogram("h", bounds=(1, 10, 100))
        for value in (1, 1, 10, 11, 100, 101, 5000):
            histogram.observe(value)
        # counts: <=1, <=10, <=100, overflow
        assert histogram.counts == [2, 1, 2, 2]
        assert histogram.count == 7
        assert histogram.total == 1 + 1 + 10 + 11 + 100 + 101 + 5000

    def test_mean_and_dict_shape(self):
        histogram = Histogram("h", bounds=(2, 4))
        histogram.observe(2)
        histogram.observe(4)
        data = histogram.to_dict()
        assert data["count"] == 2
        assert data["mean"] == 3.0
        assert data["buckets"] == {"le_2": 1, "le_4": 1, "gt_4": 0}

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(10, 1))
        with pytest.raises(ValueError):
            Histogram("h", bounds=())

    def test_merge_requires_same_layout(self):
        a = Histogram("a", bounds=(1, 2))
        b = Histogram("b", bounds=(1, 2))
        b.observe(1)
        b.observe(3)
        a.merge(b)
        assert a.counts == [1, 0, 1]
        assert a.count == 2
        with pytest.raises(ValueError):
            a.merge(Histogram("c", bounds=(5,)))


class TestRegistry:
    def test_instruments_are_interned(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_snapshot_is_json_serialisable(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.25)
        registry.histogram("h", bounds=(1,)).observe(2)
        snapshot = json.loads(json.dumps(registry.snapshot()))
        assert snapshot["counters"] == {"c": 3}
        assert snapshot["gauges"] == {"g": 1.25}
        assert snapshot["histograms"]["h"]["buckets"] == {"le_1": 0, "gt_1": 1}

    def test_write_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        path = tmp_path / "m.json"
        registry.write_json(str(path))
        assert json.loads(path.read_text())["counters"]["c"] == 1

    def test_reset_keeps_identity(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(5)
        registry.reset()
        assert counter.value == 0
        assert registry.counter("c") is counter


class TestNullRegistry:
    def test_disabled_and_shared_noop_instruments(self):
        null = NullRegistry()
        assert not null.enabled
        counter = null.counter("anything")
        assert counter is null.counter("other")
        counter.inc(100)
        null.gauge("g").set(9)
        null.histogram("h").observe(3)
        assert null.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_default_global_is_null_singleton(self):
        assert telemetry.get_registry() is NULL_REGISTRY
        assert not telemetry.get_registry().enabled


class TestGlobalContext:
    def test_enable_and_reset(self):
        registry = telemetry.enable_metrics()
        assert telemetry.get_registry() is registry
        assert registry.enabled
        telemetry.reset()
        assert telemetry.get_registry() is NULL_REGISTRY
