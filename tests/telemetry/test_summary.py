"""``telemetry summary`` helpers on damaged or mismatched artifacts."""

from __future__ import annotations

import json

import pytest

from repro.telemetry.summary import (
    aggregate_trace,
    format_trace_summary,
    summarize_path,
)


def _access(kind="load", supplier=1, designs=None):
    return json.dumps({"t": "access", "kind": kind, "supplier": supplier,
                       "designs": designs or {}})


class TestAggregateTraceTolerance:
    def test_empty_file_aggregates_to_zero(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("")
        aggregate = aggregate_trace(str(path))
        assert aggregate["records"] == 0
        assert aggregate["skipped"] == 0

    def test_truncated_last_line_is_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            _access() + "\n"
            + _access(designs={"RMNM": {"bypassed": [2, 3]}}) + "\n"
            + '{"t": "access", "kind": "lo')  # torn mid-write
        aggregate = aggregate_trace(str(path))
        assert aggregate["records"] == 2
        assert aggregate["skipped"] == 1
        assert aggregate["designs"]["RMNM"] == {2: 1, 3: 1}

    def test_non_object_lines_are_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('[1, 2]\n"just a string"\n' + _access() + "\n")
        aggregate = aggregate_trace(str(path))
        assert aggregate["records"] == 1
        assert aggregate["skipped"] == 2

    def test_skipped_lines_surface_in_rendering(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(_access() + "\n{torn")
        text = format_trace_summary(str(path))
        assert "skipped: 1" in text

    def test_clean_trace_reports_no_skips(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(_access() + "\n")
        assert "skipped" not in format_trace_summary(str(path))


class TestSummarizePathMismatches:
    def test_empty_file_is_rejected_with_value_error(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("")
        with pytest.raises(ValueError):
            summarize_path(str(path))

    def test_non_object_json_is_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ValueError):
            summarize_path(str(path))

    def test_unknown_object_schema_falls_back_to_pretty_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema": "something-else/v9",
                                    "payload": {"x": 1}}))
        text = summarize_path(str(path))
        assert '"something-else/v9"' in text
