"""CLI telemetry flags and the ``telemetry summary`` subcommand."""

import json

from repro.experiments.cli import main
from repro.telemetry import format_snapshot, summarize_path

SMALL = ["--instructions", "4000", "--workloads", "twolf",
         "--warmup-fraction", "0.25"]


class TestMetricsOut:
    def test_writes_snapshot_json(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        code = main(["run", "fig10", *SMALL, "--metrics-out", str(path)])
        assert code == 0
        snapshot = json.loads(path.read_text())
        counters = snapshot["counters"]
        assert counters["pass.references"] > 0
        assert any(key.startswith("cache.") for key in counters)
        assert any(".bypass.l" in key for key in counters)
        assert "metrics snapshot written" in capsys.readouterr().out


class TestTraceOut:
    def test_writes_jsonl_and_sampling_flag(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        code = main(["run", "fig10", *SMALL, "--trace-out", str(path),
                     "--trace-sample", "0.5"])
        assert code == 0
        lines = [json.loads(line)
                 for line in path.read_text().splitlines() if line]
        assert lines
        assert all(record["t"] == "access" for record in lines)
        assert "decision trace written" in capsys.readouterr().out


class TestProfile:
    def test_writes_bench_telemetry_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_telemetry.json"
        code = main(["all", "--skip-heavy", *SMALL,
                     "--profile", "--profile-out", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro-bench/v1"
        assert payload["created_by"] == "profile"
        assert "fig10" in payload["experiments"]
        assert payload["throughput"]["references_per_sec"] > 0
        assert payload["metrics"]["throughput.references_per_sec"] > 0
        assert payload["settings"]["instructions"] == 4000
        assert "profile written" in capsys.readouterr().out


class TestTelemetrySummary:
    def test_pretty_prints_metrics_snapshot(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        main(["run", "fig10", *SMALL, "--metrics-out", str(metrics)])
        capsys.readouterr()
        assert main(["telemetry", "summary", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "pass.references" in out

    def test_aggregates_trace_back_to_counters(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        trace = tmp_path / "trace.jsonl"
        main(["run", "fig11", *SMALL, "--metrics-out", str(metrics),
              "--trace-out", str(trace)])
        capsys.readouterr()
        assert main(["telemetry", "summary", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "records:" in out
        # every nonzero bypass counter in the snapshot appears with the
        # same value in the trace aggregation (sampling rate is 1.0)
        derived = {}
        for line in out.splitlines():
            parts = line.split()
            if len(parts) == 2 and ".bypass.l" in parts[0]:
                derived[parts[0]] = int(parts[1])
        counters = json.loads(metrics.read_text())["counters"]
        for name, value in counters.items():
            if ".bypass.l" in name and value:
                assert derived[name] == value


class TestErrorPaths:
    def test_trace_sample_out_of_range_is_a_clean_error(self, tmp_path,
                                                        capsys):
        import pytest

        from repro.experiments.cli import EXIT_BAD_VALUE

        with pytest.raises(SystemExit) as excinfo:
            main(["run", "fig10", *SMALL,
                  "--trace-out", str(tmp_path / "t.jsonl"),
                  "--trace-sample", "0"])
        assert excinfo.value.code == EXIT_BAD_VALUE
        assert "--trace-sample" in capsys.readouterr().err

    def test_bad_output_directory_fails_before_the_run(self, capsys):
        import pytest

        from repro.experiments.cli import EXIT_BAD_PATH

        with pytest.raises(SystemExit) as excinfo:
            main(["run", "fig10", *SMALL,
                  "--metrics-out", "/nonexistent/m.json"])
        assert excinfo.value.code == EXIT_BAD_PATH
        assert "--metrics-out" in capsys.readouterr().err

    def test_summary_missing_file(self, capsys):
        assert main(["telemetry", "summary", "/nonexistent/m.json"]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_summary_non_telemetry_file(self, tmp_path, capsys):
        path = tmp_path / "garbage.txt"
        path.write_text("not json at all\n")
        assert main(["telemetry", "summary", str(path)]) == 1
        assert "not a telemetry artifact" in capsys.readouterr().err


class TestSummaryHelpers:
    def test_format_snapshot_sections(self):
        text = format_snapshot({
            "counters": {"a.b": 3},
            "gauges": {"g": 1.5},
            "histograms": {"h": {"count": 2, "mean": 4.0,
                                 "buckets": {"le_8": 2, "gt_8": 0}}},
        })
        assert "a.b" in text
        assert "gauges:" in text
        assert "le_8" in text

    def test_summarize_path_detects_bench_payload(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"schema": "repro-bench/v1",
                                    "created_by": "profile",
                                    "metrics": {},
                                    "experiments": {"fig10": 1.0}}))
        text = summarize_path(str(path))
        assert "fig10" in text
