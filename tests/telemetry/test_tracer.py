"""Decision tracer: JSONL validity, deterministic sampling, size bounds."""

import json

import pytest

from repro import telemetry
from repro.telemetry import DecisionTracer, NullTracer, access_record


def read_jsonl(path):
    with open(path) as handle:
        return [json.loads(line) for line in handle if line.strip()]


class TestAccessRecord:
    def test_bypassed_is_bits_intersect_reached_tiers(self):
        record = access_record(
            address=0x1000, kind_name="load", supplier=4, tiers_missed=3,
            designs={"D": (False, True, False, True, True)},
        )
        decision = record["designs"]["D"]
        assert decision["bits"] == [0, 1, 0, 1, 1]
        # tier 2 (bit set, reached) counts; tier 4/5 bits are beyond the
        # walk (supplier = 4) and tier 1 is never an MNM target.
        assert decision["bypassed"] == [2]
        assert record["missed"] == 3
        assert record["supplier"] == 4

    def test_latency_is_optional(self):
        record = access_record(0, "store", None, 2, {})
        assert "latency" not in record
        record = access_record(0, "store", None, 2, {}, latency=7)
        assert record["latency"] == 7


class TestDecisionTracer:
    def test_writes_valid_jsonl(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with DecisionTracer(path) as tracer:
            for n in range(5):
                if tracer.want():
                    tracer.emit(access_record(n, "load", 1, 0, {}))
        records = read_jsonl(path)
        assert len(records) == 5
        assert [r["addr"] for r in records] == list(range(5))
        assert all(r["t"] == "access" for r in records)

    def test_sampling_stride_is_deterministic(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with DecisionTracer(path, sample_rate=0.25) as tracer:
            for n in range(100):
                if tracer.want():
                    tracer.emit(access_record(n, "load", 1, 0, {}))
        records = read_jsonl(path)
        assert len(records) == 25
        # every 4th eligible access, starting with the first
        assert [r["n"] for r in records] == list(range(0, 100, 4))

    def test_rejects_bad_rates(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        for rate in (0.0, -1, 1.5):
            with pytest.raises(ValueError):
                DecisionTracer(path, sample_rate=rate)

    def test_output_is_size_bounded(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with DecisionTracer(path, max_bytes=500) as tracer:
            for n in range(100):
                if tracer.want():
                    tracer.emit(access_record(n, "load", 1, 0, {}))
            emitted, dropped = tracer.emitted, tracer.dropped
            bytes_written = tracer.bytes_written
        assert bytes_written <= 500
        assert emitted > 0
        assert dropped > 0
        assert emitted + dropped == 100
        # the file stayed valid JSONL despite the cutoff
        assert len(read_jsonl(path)) == emitted

    def test_close_is_idempotent_and_emit_after_close_drops(self, tmp_path):
        tracer = DecisionTracer(str(tmp_path / "t.jsonl"))
        tracer.close()
        tracer.close()
        tracer.emit({"t": "access"})
        assert tracer.dropped == 1


class TestNullTracer:
    def test_never_samples(self):
        null = NullTracer()
        assert not null.enabled
        assert not any(null.want() for _ in range(10))
        null.emit({"t": "access"})
        null.close()

    def test_default_global_is_null(self):
        assert not telemetry.get_tracer().enabled


class TestGlobalTracing:
    def test_enable_tracing_installs_and_reset_closes(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        tracer = telemetry.enable_tracing(path, sample_rate=1.0)
        assert telemetry.get_tracer() is tracer
        assert tracer.want()
        tracer.emit(access_record(1, "load", None, 2, {}))
        telemetry.reset()
        assert not telemetry.get_tracer().enabled
        # reset closed the file; content is intact
        assert len(read_jsonl(path)) == 1

    def test_set_tracer_closes_previous(self, tmp_path):
        first = telemetry.enable_tracing(str(tmp_path / "a.jsonl"))
        telemetry.enable_tracing(str(tmp_path / "b.jsonl"))
        first.emit({"t": "access"})
        assert first.dropped == 1  # already closed
