"""Integration: telemetry wired through the simulation entry points.

The contract pinned here is the acceptance criterion of the telemetry
PR: the registry's per-level bypass counters, the JSONL trace aggregate
and the :class:`~repro.analysis.coverage.CoverageMeter` must all report
the same totals for the same run — and with telemetry disabled (the
default) nothing is recorded anywhere.
"""

import json

from repro import telemetry
from repro.core.presets import parse_design
from repro.simulate import run_core_trace, run_reference_pass
from repro.telemetry import aggregate_trace, trace_counters
from repro.workloads import get_trace

from tests.conftest import random_references, small_hierarchy_config

DESIGN_NAMES = ("PERFECT", "RMNM_128_1")


def run_pass(config, refs, warmup=0):
    designs = [parse_design(name) for name in DESIGN_NAMES]
    return run_reference_pass(refs, config, designs, workload_name="test",
                              warmup=warmup)


class TestReferencePassMetrics:
    def test_bypass_counters_match_coverage_meter(self, rng):
        config = small_hierarchy_config(3)
        refs = random_references(rng, 4000, span=1 << 14)
        registry = telemetry.enable_metrics()
        result = run_pass(config, refs, warmup=1000)
        counters = registry.snapshot()["counters"]

        assert counters["pass.references"] == result.references
        for name in DESIGN_NAMES:
            meter = result.designs[name].coverage
            identified_total = 0
            for tier in range(2, config.num_tiers + 1):
                candidates = counters[f"mnm.{name}.candidates.l{tier}"]
                bypasses = counters[f"mnm.{name}.bypass.l{tier}"]
                assert candidates == meter.tier_candidates(tier)
                assert bypasses == meter._tiers[tier - 1].identified
                identified_total += bypasses
            assert identified_total == meter.identified
        # PERFECT identifies every candidate, so its counters are exercised
        perfect = result.designs["PERFECT"].coverage
        assert perfect.identified == perfect.candidates > 0

    def test_cache_counters_match_pass_stats(self, rng):
        config = small_hierarchy_config(3)
        refs = random_references(rng, 3000)
        registry = telemetry.enable_metrics()
        result = run_pass(config, refs)
        counters = registry.snapshot()["counters"]
        for name, (probes, hits) in result.cache_stats.items():
            assert counters[f"cache.{name}.probes"] == probes
            assert counters[f"cache.{name}.hits"] == hits

    def test_mnm_query_counters(self, rng):
        config = small_hierarchy_config(3)
        refs = random_references(rng, 2000)
        registry = telemetry.enable_metrics()
        result = run_pass(config, refs)
        counters = registry.snapshot()["counters"]
        # two designs, each queried once per measured reference
        assert counters["mnm.queries"] == 2 * result.references

    def test_disabled_mode_records_nothing(self, rng):
        config = small_hierarchy_config(3)
        refs = random_references(rng, 2000)
        result = run_pass(config, refs)  # defaults: all null singletons
        assert result.references == 2000
        assert telemetry.get_registry().snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }


class TestTraceRoundTrip:
    def test_trace_aggregates_back_to_registry_counters(self, rng, tmp_path):
        config = small_hierarchy_config(3)
        refs = random_references(rng, 3000, span=1 << 14)
        registry = telemetry.enable_metrics()
        path = str(tmp_path / "trace.jsonl")
        telemetry.enable_tracing(path, sample_rate=1.0)
        result = run_pass(config, refs)
        telemetry.get_tracer().close()

        aggregate = aggregate_trace(path)
        assert aggregate["records"] == result.references
        counters = registry.snapshot()["counters"]
        derived = trace_counters(aggregate)
        for name in DESIGN_NAMES:
            for tier in range(2, config.num_tiers + 1):
                key = f"mnm.{name}.bypass.l{tier}"
                assert derived.get(key, 0) == counters[key]

    def test_sampled_trace_is_proportional(self, rng, tmp_path):
        config = small_hierarchy_config(3)
        refs = random_references(rng, 2000)
        path = str(tmp_path / "trace.jsonl")
        telemetry.enable_tracing(path, sample_rate=0.1)
        run_pass(config, refs)
        telemetry.get_tracer().close()
        assert aggregate_trace(path)["records"] == 200

    def test_trace_records_are_schema_complete(self, rng, tmp_path):
        config = small_hierarchy_config(3)
        refs = random_references(rng, 500)
        path = str(tmp_path / "trace.jsonl")
        telemetry.enable_tracing(path)
        run_pass(config, refs)
        telemetry.get_tracer().close()
        with open(path) as handle:
            record = json.loads(handle.readline())
        assert record["t"] == "access"
        assert record["kind"] in ("instruction", "load", "store")
        assert set(record["designs"]) == set(DESIGN_NAMES)
        for decision in record["designs"].values():
            assert len(decision["bits"]) == config.num_tiers


class TestProfilingHooks:
    def test_reference_pass_throughput(self, rng):
        config = small_hierarchy_config(3)
        refs = random_references(rng, 1500)
        profiler = telemetry.enable_profiling()
        result = run_pass(config, refs)
        stats = profiler.stats_for("reference_pass")
        assert stats is not None
        assert stats.units == result.references
        assert stats.unit_name == "references"
        assert stats.per_sec > 0

    def test_core_trace_phase_and_counters(self):
        config = small_hierarchy_config(3)
        trace = get_trace("twolf", 3000, 0)
        registry = telemetry.enable_metrics()
        profiler = telemetry.enable_profiling()
        run = run_core_trace(trace, config, parse_design("PERFECT"),
                             warmup=1000)
        stats = profiler.stats_for("core_trace")
        assert stats.units == run.core.instructions
        assert stats.unit_name == "instructions"
        counters = registry.snapshot()["counters"]
        assert counters["core.instructions"] == run.core.instructions
        assert counters["core.cycles"] == run.core.cycles
        # memory counters mirror the post-warmup coverage meter exactly
        meter = run.coverage
        for tier in range(2, config.num_tiers + 1):
            assert (counters[f"mnm.PERFECT.candidates.l{tier}"]
                    == meter.tier_candidates(tier))
        # cache stats were reset at the warmup boundary, like the meters
        for name, (probes, hits) in run.cache_stats.items():
            assert counters[f"cache.{name}.probes"] == probes
            assert counters[f"cache.{name}.hits"] == hits
