"""The span recorder: hierarchy, counter deltas, merging, the null path."""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.telemetry.spans import (
    NULL_SPANS,
    NullSpanRecorder,
    SPANS_SCHEMA,
    SpanRecorder,
)


class TestNullRecorder:
    def test_default_is_null_and_cheap(self):
        spans = telemetry.get_spans()
        assert isinstance(spans, NullSpanRecorder)
        assert not spans.enabled
        with spans.span("anything", attr=1):
            spans.event("ignored")
            spans.record_task("t", "d", 1)
        assert spans.snapshot()["spans"] == []
        assert spans.current_name() == ""

    def test_reset_restores_null(self):
        telemetry.enable_spans()
        assert telemetry.get_spans().enabled
        telemetry.reset()
        assert telemetry.get_spans() is NULL_SPANS


class TestSpanTree:
    def test_nesting_records_parent_ids(self):
        spans = SpanRecorder()
        with spans.span("outer", jobs=2):
            with spans.span("inner"):
                assert spans.current_name() == "inner"
            assert spans.current_name() == "outer"
        snapshot = spans.snapshot()
        assert snapshot["schema"] == SPANS_SCHEMA
        outer, inner = snapshot["spans"]
        assert outer["name"] == "outer"
        assert outer["parent"] is None
        assert outer["attrs"] == {"jobs": 2}
        assert inner["parent"] == outer["id"]
        assert outer["end"] >= inner["end"] >= inner["start"]

    def test_open_span_survives_snapshot(self):
        spans = SpanRecorder()
        with spans.span("outer"):
            snapshot = spans.snapshot()
        assert snapshot["spans"][0]["end"] is None

    def test_error_annotates_span(self):
        spans = SpanRecorder()
        with pytest.raises(RuntimeError):
            with spans.span("doomed"):
                raise RuntimeError("boom")
        span = spans.snapshot()["spans"][0]
        assert span["end"] is not None
        assert span["attrs"]["error"] == "RuntimeError"

    def test_counter_deltas_attributed_to_span(self):
        registry = telemetry.enable_metrics()
        spans = telemetry.enable_spans()
        registry.counter("work.before").inc(5)
        with spans.span("phase"):
            registry.counter("work.inside").inc(3)
        span = spans.snapshot()["spans"][0]
        assert span["counters"] == {"work.inside": 3}


class TestEventsAndTasks:
    def test_event_carries_active_span_name(self):
        spans = SpanRecorder()
        with spans.span("executor.execute"):
            spans.event("executor.retry", task="abc", attempt=1)
        event = spans.snapshot()["events"][0]
        assert event["name"] == "executor.retry"
        assert event["span"] == "executor.execute"
        assert event["attrs"] == {"task": "abc", "attempt": 1}

    def test_task_ledger_keeps_attempt_and_worker(self):
        spans = SpanRecorder()
        spans.record_task("aaa", "first", 1, elapsed=0.5, worker="serial")
        spans.record_task("bbb", "second", 3, elapsed=1.0, worker="pool")
        spans.record_task("ccc", "third", 0, worker="resumed")
        tasks = spans.snapshot()["tasks"]
        assert [t["task_id"] for t in tasks] == ["aaa", "bbb", "ccc"]
        assert tasks[1]["attempt"] == 3
        assert tasks[1]["worker"] == "pool"
        assert "elapsed_s" not in tasks[2]


class TestMergeRemote:
    def test_remote_spans_rebase_under_active_parent(self):
        parent = SpanRecorder()
        worker = SpanRecorder()
        with worker.span("task.reference_pass"):
            with worker.span("task.detail"):
                pass
        with parent.span("executor.execute"):
            parent.merge_remote(worker.snapshot(), task="abc",
                                attempt=1, worker="pool")
        snapshot = parent.snapshot()
        by_name = {span["name"]: span for span in snapshot["spans"]}
        root = by_name["executor.execute"]
        task = by_name["task.reference_pass"]
        detail = by_name["task.detail"]
        assert task["parent"] == root["id"]
        assert task["remote"] is True
        assert task["attrs"]["task"] == "abc"
        assert task["attrs"]["worker"] == "pool"
        assert detail["parent"] == task["id"]
        # Only remote ROOTS get attribution stamped.
        assert "task" not in detail.get("attrs", {})
        # Ids stay unique after rebasing.
        ids = [span["id"] for span in snapshot["spans"]]
        assert len(ids) == len(set(ids))

    def test_merge_is_deterministic_in_submission_order(self):
        def merged(order):
            parent = SpanRecorder()
            with parent.span("executor.execute"):
                for name in order:
                    worker = SpanRecorder()
                    with worker.span(f"task.{name}"):
                        pass
                    parent.merge_remote(worker.snapshot(), task=name)
            return [span["name"]
                    for span in parent.snapshot()["spans"]]

        assert merged(["a", "b"]) == ["executor.execute", "task.a", "task.b"]
