"""Profiler phases/throughput and the structured harness logger."""

import io

from repro import telemetry
from repro.telemetry import NullProfiler, Profiler, TelemetryLogger
from repro.telemetry.logger import get_logger


class TestProfiler:
    def test_phase_context_manager_accumulates(self):
        profiler = Profiler()
        with profiler.phase("work"):
            pass
        with profiler.phase("work"):
            pass
        stats = profiler.stats_for("work")
        assert stats.calls == 2
        assert stats.seconds >= 0.0

    def test_add_with_units_yields_throughput(self):
        profiler = Profiler()
        profiler.add("pass", 2.0, units=1000, unit_name="references")
        profiler.add("pass", 2.0, units=1000, unit_name="references")
        stats = profiler.stats_for("pass")
        assert stats.seconds == 4.0
        assert stats.units == 2000
        assert stats.per_sec == 500.0
        snapshot = profiler.snapshot()
        assert snapshot["pass"]["per_sec"] == 500.0
        assert snapshot["pass"]["unit_name"] == "references"

    def test_phase_without_units_omits_throughput_keys(self):
        profiler = Profiler()
        profiler.add("setup", 0.5)
        assert "per_sec" not in profiler.snapshot()["setup"]

    def test_unknown_phase_is_none(self):
        assert Profiler().stats_for("nope") is None

    def test_reset(self):
        profiler = Profiler()
        profiler.add("x", 1.0)
        profiler.reset()
        assert profiler.snapshot() == {}


class TestNullProfiler:
    def test_disabled_and_inert(self):
        null = NullProfiler()
        assert not null.enabled
        with null.phase("anything"):
            pass
        null.add("anything", 1.0, units=5)
        assert null.snapshot() == {}

    def test_default_global_is_null(self):
        assert not telemetry.get_profiler().enabled

    def test_enable_profiling_installs(self):
        profiler = telemetry.enable_profiling()
        assert telemetry.get_profiler() is profiler
        assert profiler.enabled


class TestTelemetryLogger:
    def test_format_and_fields(self):
        stream = io.StringIO()
        logger = TelemetryLogger("report", stream=stream)
        logger.info("fig10 done (1.2s)")
        logger.info("trace written", records=5, dropped=0)
        lines = stream.getvalue().splitlines()
        assert lines[0] == "[report] fig10 done (1.2s)"
        assert lines[1] == "[report] trace written records=5 dropped=0"

    def test_level_filtering(self):
        stream = io.StringIO()
        logger = TelemetryLogger("x", level="warning", stream=stream)
        logger.debug("hidden")
        logger.info("hidden")
        logger.warning("shown")
        assert stream.getvalue() == "[x] shown\n"

    def test_get_logger_interns_by_name(self):
        assert get_logger("a") is get_logger("a")
        assert get_logger("a") is not get_logger("b")
