"""Tests for the workload profile catalogue."""

import pytest

from repro.workloads.spec import (
    StreamSpec,
    WorkloadProfile,
    all_profiles,
    profile,
    workload_names,
)


class TestCatalogue:
    def test_ten_workloads_five_per_suite(self):
        names = workload_names()
        assert len(names) == 10
        suites = [profile(name).suite for name in names]
        assert suites.count("fp") == 5
        assert suites.count("int") == 5

    def test_fp_first_in_table2_order(self):
        names = workload_names()
        assert all(profile(n).suite == "fp" for n in names[:5])
        assert all(profile(n).suite == "int" for n in names[5:])

    def test_canonical_names(self):
        assert set(workload_names()) == {
            "ammp", "applu", "apsi", "art", "equake",
            "bzip2", "gcc", "mcf", "twolf", "vpr",
        }

    def test_all_profiles_matches_names(self):
        assert [p.name for p in all_profiles()] == list(workload_names())

    def test_unknown_profile(self):
        with pytest.raises(ValueError, match="unknown workload"):
            profile("perl")


class TestProfileShape:
    def test_memory_bound_apps_have_low_reuse(self):
        assert profile("mcf").data_reuse < profile("twolf").data_reuse
        assert profile("art").data_reuse < profile("bzip2").data_reuse

    def test_apsi_has_biggest_fp_code(self):
        fp_codes = {n: profile(n).code_bytes
                    for n in workload_names() if profile(n).suite == "fp"}
        assert max(fp_codes, key=fp_codes.get) == "apsi"

    def test_gcc_has_biggest_code_overall(self):
        codes = {n: profile(n).code_bytes for n in workload_names()}
        assert max(codes, key=codes.get) == "gcc"

    def test_mcf_touches_most_data(self):
        footprints = {
            n: sum(s.size for s in profile(n).streams)
            for n in workload_names()
        }
        assert max(footprints, key=footprints.get) == "mcf"

    def test_fp_profiles_have_fp_fraction(self):
        for name in workload_names():
            spec = profile(name)
            if spec.suite == "fp":
                assert spec.fp_fraction > 0
            else:
                assert spec.fp_fraction == 0

    def test_stream_weights_positive(self):
        for spec in all_profiles():
            for stream in spec.streams:
                assert stream.weight > 0


class TestValidation:
    def test_stream_kind_checked(self):
        with pytest.raises(ValueError, match="unknown stream kind"):
            StreamSpec("walk", 1024, 1.0)

    def test_stream_weight_checked(self):
        with pytest.raises(ValueError):
            StreamSpec("random", 1024, 0.0)

    def test_fractions_must_leave_alu_room(self):
        with pytest.raises(ValueError):
            WorkloadProfile(
                name="bad", suite="int", description="", code_bytes=8192,
                streams=(StreamSpec("random", 1024, 1.0),),
                load_fraction=0.5, store_fraction=0.4, branch_fraction=0.2,
            )

    def test_needs_streams(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="bad", suite="int", description="",
                            code_bytes=8192, streams=())
