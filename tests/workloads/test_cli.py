"""Tests for the repro-trace CLI."""

import pytest

from repro.workloads.cli import main


class TestProfiles:
    def test_lists_all_workloads(self, capsys):
        assert main(["profiles"]) == 0
        out = capsys.readouterr().out
        for name in ("ammp", "mcf", "twolf"):
            assert name in out


class TestGen:
    def test_gen_and_save(self, tmp_path, capsys):
        path = tmp_path / "t.npz"
        assert main(["gen", "vpr", "2000", "--out", str(path)]) == 0
        out = capsys.readouterr().out
        assert "generated" in out
        assert path.exists()

    def test_gen_without_save(self, capsys):
        assert main(["gen", "vpr", "1000"]) == 0
        assert "generated" in capsys.readouterr().out

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["gen", "perl", "1000"])


class TestInfo:
    def test_info_from_workload_name(self, capsys):
        assert main(["info", "twolf", "--instructions", "3000"]) == 0
        out = capsys.readouterr().out
        assert "twolf" in out
        assert "code footprint" in out
        assert "load" in out

    def test_info_from_file(self, tmp_path, capsys):
        path = tmp_path / "t.npz"
        main(["gen", "gcc", "2000", "--out", str(path)])
        capsys.readouterr()
        assert main(["info", str(path)]) == 0
        assert "gcc" in capsys.readouterr().out

    def test_info_bad_source(self):
        with pytest.raises(SystemExit, match="neither a file nor"):
            main(["info", "no-such-thing"])


class TestDump:
    def test_dump_shows_instructions(self, capsys):
        assert main(["dump", "mcf", "--count", "8",
                     "--instructions", "2000"]) == 0
        out = capsys.readouterr().out
        assert "0x" in out
        assert out.count("\n") >= 8
