"""Tests for the address pattern primitives."""

import random

import pytest

from repro.workloads.patterns import (
    HotColdPattern,
    LoopReusePattern,
    PointerChasePattern,
    RandomPattern,
    Region,
    SequentialPattern,
    StridedPattern,
)


REGION = Region(base=0x1000, size=4096)


def addresses(pattern, count):
    return [pattern.next_address() for _ in range(count)]


class TestRegion:
    def test_contains(self):
        assert REGION.contains(0x1000)
        assert REGION.contains(0x1FFF)
        assert not REGION.contains(0x2000)
        assert not REGION.contains(0xFFF)

    def test_validation(self):
        with pytest.raises(ValueError):
            Region(0, 4)
        with pytest.raises(ValueError):
            Region((1 << 32) - 16, 4096)


class TestSequential:
    def test_advances_and_wraps(self):
        pattern = SequentialPattern(Region(0x1000, 64), step=16)
        assert addresses(pattern, 5) == [0x1000, 0x1010, 0x1020, 0x1030,
                                         0x1000]

    def test_stays_in_region(self):
        pattern = SequentialPattern(REGION, step=24)
        assert all(REGION.contains(a) for a in addresses(pattern, 1000))


class TestStrided:
    def test_stride_spacing(self):
        pattern = StridedPattern(Region(0x0, 4096), stride=256)
        first = addresses(pattern, 4)
        assert first == [0, 256, 512, 768]

    def test_phase_shifts_after_wrap(self):
        pattern = StridedPattern(Region(0x0, 512), stride=256, phase_step=8)
        sweep1 = addresses(pattern, 2)
        sweep2 = addresses(pattern, 2)
        assert sweep2 == [a + 8 for a in sweep1]

    def test_stays_in_region(self):
        pattern = StridedPattern(REGION, stride=192)
        assert all(REGION.contains(a) for a in addresses(pattern, 1000))


class TestRandom:
    def test_alignment_and_bounds(self):
        pattern = RandomPattern(REGION, random.Random(0), align=8)
        for address in addresses(pattern, 500):
            assert REGION.contains(address)
            assert address % 8 == 0

    def test_deterministic(self):
        a = RandomPattern(REGION, random.Random(3))
        b = RandomPattern(REGION, random.Random(3))
        assert addresses(a, 50) == addresses(b, 50)


class TestPointerChase:
    def test_visits_every_node_once_per_lap(self):
        region = Region(0x0, 64 * 16)
        pattern = PointerChasePattern(region, random.Random(1), node_size=64)
        lap = addresses(pattern, 16)
        assert sorted(lap) == [i * 64 for i in range(16)]
        assert addresses(pattern, 16) == lap  # the cycle repeats

    def test_order_is_shuffled(self):
        region = Region(0x0, 64 * 64)
        pattern = PointerChasePattern(region, random.Random(5), node_size=64)
        lap = addresses(pattern, 64)
        assert lap != sorted(lap)

    def test_node_alignment(self):
        pattern = PointerChasePattern(REGION, random.Random(0), node_size=32)
        assert all(a % 32 == 0x1000 % 32 for a in addresses(pattern, 100))


class TestHotCold:
    def test_hot_fraction_respected(self):
        region = Region(0x0, 64 * 1024)
        pattern = HotColdPattern(region, random.Random(0), hot_bytes=1024,
                                 hot_fraction=0.9)
        sample = addresses(pattern, 5000)
        hot = sum(1 for a in sample if a < 1024)
        assert hot / len(sample) > 0.85

    def test_validation(self):
        with pytest.raises(ValueError):
            HotColdPattern(REGION, random.Random(0), hot_fraction=1.5)


class TestLoopReuse:
    def test_sweeps_tile_before_moving(self):
        pattern = LoopReusePattern(Region(0x0, 4096), tile_bytes=64,
                                   sweeps_per_tile=2, step=16)
        sample = addresses(pattern, 8)
        assert sample == [0, 16, 32, 48] * 2
        next_tile = addresses(pattern, 4)
        assert next_tile == [64, 80, 96, 112]

    def test_wraps_region(self):
        pattern = LoopReusePattern(Region(0x0, 128), tile_bytes=64,
                                   sweeps_per_tile=1, step=32)
        sample = addresses(pattern, 8)
        assert sample == [0, 32, 64, 96, 0, 32, 64, 96]

    def test_validation(self):
        with pytest.raises(ValueError):
            LoopReusePattern(REGION, tile_bytes=4, step=8)
        with pytest.raises(ValueError):
            LoopReusePattern(REGION, sweeps_per_tile=0)
