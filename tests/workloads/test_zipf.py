"""Tests for the Zipf access pattern."""

import random
from collections import Counter

import pytest

from repro.workloads.patterns import Region, ZipfPattern
from repro.workloads.generator import TraceGenerator
from repro.workloads.spec import StreamSpec, WorkloadProfile


REGION = Region(base=0x10000, size=64 * 1024)


class TestZipfPattern:
    def test_addresses_in_region_and_aligned(self):
        pattern = ZipfPattern(REGION, random.Random(0), block_size=64)
        for _ in range(500):
            address = pattern.next_address()
            assert REGION.contains(address)
            assert (address - REGION.base) % 64 == 0

    def test_heavy_skew(self):
        """With s=1, the hottest block dominates a uniform draw."""
        pattern = ZipfPattern(REGION, random.Random(1), exponent=1.0)
        counts = Counter(pattern.next_address() for _ in range(20000))
        hottest = counts.most_common(1)[0][1]
        num_blocks = REGION.size // 64
        uniform_expectation = 20000 / num_blocks
        assert hottest > 10 * uniform_expectation

    def test_higher_exponent_is_more_skewed(self):
        def top_share(exponent):
            pattern = ZipfPattern(REGION, random.Random(2),
                                  exponent=exponent)
            counts = Counter(pattern.next_address() for _ in range(8000))
            top10 = sum(count for _, count in counts.most_common(10))
            return top10 / 8000

        assert top_share(1.5) > top_share(0.5)

    def test_hot_blocks_are_shuffled(self):
        """The hottest block should not simply be the region base."""
        hot_addresses = set()
        for seed in range(6):
            pattern = ZipfPattern(REGION, random.Random(seed))
            counts = Counter(pattern.next_address() for _ in range(3000))
            hot_addresses.add(counts.most_common(1)[0][0])
        assert len(hot_addresses) > 1

    def test_deterministic(self):
        a = ZipfPattern(REGION, random.Random(5))
        b = ZipfPattern(REGION, random.Random(5))
        assert [a.next_address() for _ in range(100)] == [
            b.next_address() for _ in range(100)]

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfPattern(REGION, random.Random(0), exponent=0.0)
        with pytest.raises(ValueError):
            ZipfPattern(REGION, random.Random(0), block_size=4)


class TestZipfInProfiles:
    def test_zipf_stream_spec_accepted(self):
        spec = StreamSpec("zipf", 64 * 1024, 1.0, param=64)
        profile = WorkloadProfile(
            name="zipfy", suite="int", description="zipf test",
            code_bytes=8192, streams=(spec,),
        )
        trace = TraceGenerator(profile, seed=0).generate(3000)
        assert len(trace) >= 3000
        data = [inst.addr for inst in trace.instructions
                if inst.op.is_memory]
        assert data
