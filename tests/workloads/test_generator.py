"""Tests for the synthetic trace generator."""

import pytest

from repro.cpu.isa import INSTRUCTION_BYTES, OpClass
from repro.workloads.generator import (
    CODE_BASE,
    STACK_BASE,
    STACK_BYTES,
    TraceGenerator,
    generate_trace,
)
from repro.workloads.spec import profile, workload_names


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = generate_trace("twolf", 5000, seed=1)
        b = generate_trace("twolf", 5000, seed=1)
        assert a.instructions == b.instructions

    def test_different_seed_differs(self):
        a = generate_trace("twolf", 5000, seed=1)
        b = generate_trace("twolf", 5000, seed=2)
        assert a.instructions != b.instructions

    def test_workloads_differ_under_same_seed(self):
        a = generate_trace("twolf", 5000, seed=0)
        b = generate_trace("vpr", 5000, seed=0)
        assert a.instructions != b.instructions


class TestStructure:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_trace("gcc", 20000, seed=0)

    def test_length_at_least_requested(self, trace):
        assert len(trace) >= 20000

    def test_pcs_inside_code_region(self, trace):
        code_bytes = profile("gcc").code_bytes
        for inst in trace.instructions:
            assert CODE_BASE <= inst.pc < CODE_BASE + code_bytes
            assert inst.pc % INSTRUCTION_BYTES == 0

    def test_memory_addresses_in_known_regions(self, trace):
        for inst in trace.instructions:
            if inst.op.is_memory:
                in_stack = STACK_BASE <= inst.addr < STACK_BASE + STACK_BYTES
                in_heap = 0x1000_0000 <= inst.addr < 0x7000_0000
                assert in_stack or in_heap, hex(inst.addr)

    def test_op_mix_tracks_profile(self, trace):
        spec = profile("gcc")
        counts = trace.op_counts()
        total = len(trace)
        load_fraction = counts[OpClass.LOAD] / total
        store_fraction = counts[OpClass.STORE] / total
        assert abs(load_fraction - spec.load_fraction) < 0.06
        assert abs(store_fraction - spec.store_fraction) < 0.05

    def test_branches_present_and_mostly_loops(self, trace):
        branches = [i for i in trace.instructions if i.op is OpClass.BRANCH]
        assert branches
        taken = sum(1 for b in branches if b.taken)
        assert 0.2 < taken / len(branches) < 0.99

    def test_loop_branch_targets_backward(self, trace):
        for inst in trace.instructions:
            if inst.op is OpClass.BRANCH and inst.taken and inst.target <= inst.pc:
                assert inst.pc - inst.target < 64 * INSTRUCTION_BYTES

    def test_register_ranges(self, trace):
        for inst in trace.instructions[:2000]:
            assert inst.dest < 64
            assert inst.src1 < 64
            assert inst.src2 < 64


class TestProfiles:
    @pytest.mark.parametrize("name", workload_names())
    def test_every_profile_generates(self, name):
        trace = generate_trace(name, 2000, seed=0)
        assert len(trace) >= 2000
        assert trace.name == name

    def test_fp_profiles_emit_fp_ops(self):
        trace = generate_trace("art", 10000, seed=0)
        counts = trace.op_counts()
        assert counts[OpClass.FALU] + counts[OpClass.FMUL] > 0

    def test_int_profiles_emit_no_fp(self):
        trace = generate_trace("bzip2", 10000, seed=0)
        counts = trace.op_counts()
        assert counts[OpClass.FALU] + counts[OpClass.FMUL] == 0

    def test_memory_bound_profiles_have_larger_footprints(self):
        """mcf must touch far more distinct blocks than twolf."""
        mcf_blocks = {
            inst.addr >> 5 for inst in generate_trace("mcf", 30000).instructions
            if inst.op.is_memory
        }
        twolf_blocks = {
            inst.addr >> 5 for inst in generate_trace("twolf", 30000).instructions
            if inst.op.is_memory
        }
        assert len(mcf_blocks) > 2 * len(twolf_blocks)

    def test_apsi_has_largest_code_footprint_of_fp(self):
        lines = {}
        for name in ("apsi", "art", "applu"):
            trace = generate_trace(name, 30000)
            lines[name] = len({i.pc >> 5 for i in trace.instructions})
        assert lines["apsi"] > lines["art"]
        assert lines["apsi"] > lines["applu"]

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_trace("twolf", 0)
        with pytest.raises(ValueError):
            generate_trace("nosuchapp", 100)

    def test_generator_reusable(self):
        generator = TraceGenerator(profile("vpr"), seed=0)
        first = generator.generate(1000)
        second = generator.generate(1000)
        # the generator keeps evolving state: traces continue, not repeat
        assert first.instructions != second.instructions
