"""Tests for the trace container, views and persistence."""

import os

import pytest

from repro.cache.cache import AccessKind
from repro.cpu.isa import Instruction, OpClass
from repro.workloads import clear_trace_cache, get_trace
from repro.workloads.trace import Trace


def tiny_trace():
    instructions = [
        Instruction(op=OpClass.IALU, pc=0x1000, dest=8, src1=1),
        Instruction(op=OpClass.LOAD, pc=0x1004, dest=9, src1=8,
                    addr=0x2000),
        Instruction(op=OpClass.STORE, pc=0x1008, src1=9, src2=8,
                    addr=0x2008),
        Instruction(op=OpClass.BRANCH, pc=0x100C, src1=9, taken=True,
                    target=0x1000),
        Instruction(op=OpClass.IALU, pc=0x1000, dest=8, src1=1),
    ]
    return Trace(name="tiny", seed=7, instructions=instructions,
                 description="hand trace")


class TestViews:
    def test_len_and_iter(self):
        trace = tiny_trace()
        assert len(trace) == 5
        assert [inst.op for inst in trace][:2] == [OpClass.IALU, OpClass.LOAD]

    def test_memory_references_merge_fetch_and_data(self):
        trace = tiny_trace()
        refs = list(trace.memory_references(fetch_block_size=32))
        # line 0x1000..0x101F fetched once, then load, store; the taken
        # branch forces a refetch of the line for the 5th instruction
        assert refs == [
            (0x1000, AccessKind.INSTRUCTION),
            (0x2000, AccessKind.LOAD),
            (0x2008, AccessKind.STORE),
            (0x1000, AccessKind.INSTRUCTION),
        ]

    def test_line_change_triggers_fetch(self):
        instructions = [
            Instruction(op=OpClass.IALU, pc=0x1000 + 4 * i) for i in range(16)
        ]
        trace = Trace("t", 0, instructions)
        refs = list(trace.memory_references(fetch_block_size=32))
        assert refs == [(0x1000, AccessKind.INSTRUCTION),
                        (0x1020, AccessKind.INSTRUCTION)]

    def test_op_counts(self):
        counts = tiny_trace().op_counts()
        assert counts[OpClass.IALU] == 2
        assert counts[OpClass.LOAD] == 1

    def test_data_references(self):
        assert tiny_trace().data_references == 2


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        trace = tiny_trace()
        path = str(tmp_path / "trace.npz")
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.name == trace.name
        assert loaded.seed == trace.seed
        assert loaded.description == trace.description
        assert loaded.instructions == trace.instructions

    def test_round_trip_generated_trace(self, tmp_path):
        trace = get_trace("twolf", 2000, seed=3)
        path = str(tmp_path / "twolf.npz")
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.instructions == trace.instructions
        assert os.path.getsize(path) > 0


class TestCache:
    def test_get_trace_memoises(self):
        clear_trace_cache()
        a = get_trace("vpr", 1500, seed=0)
        b = get_trace("vpr", 1500, seed=0)
        assert a is b

    def test_distinct_keys_distinct_traces(self):
        clear_trace_cache()
        a = get_trace("vpr", 1500, seed=0)
        b = get_trace("vpr", 1500, seed=1)
        assert a is not b

    def test_clear(self):
        a = get_trace("vpr", 1500, seed=0)
        clear_trace_cache()
        assert get_trace("vpr", 1500, seed=0) is not a
