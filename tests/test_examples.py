"""Smoke tests: every example script runs end to end.

Each example is executed in-process via ``runpy`` with tiny arguments so
the whole suite stays fast; the assertions check the scripts print their
headline results (not specific numbers).
"""

import runpy
import sys

import pytest

EXAMPLES = "examples"


def run_example(monkeypatch, capsys, script, argv):
    monkeypatch.setattr(sys, "argv", [script] + argv)
    runpy.run_path(f"{EXAMPLES}/{script}", run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "quickstart.py",
                          ["twolf", "6000"])
        assert "HMNM4" in out
        assert "PERFECT" in out
        assert "coverage" in out

    def test_hierarchy_depth_study(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "hierarchy_depth_study.py",
                          ["vpr", "5000"])
        assert "2level" in out
        assert "7level" in out
        assert "miss time share" in out

    def test_filter_design_exploration(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys,
                          "filter_design_exploration.py", ["twolf", "5000"])
        assert "highest coverage" in out
        assert "CMNM_8_12" in out

    def test_power_study(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "power_study.py",
                          ["5000", "twolf"])
        assert "parallel" in out
        assert "serial" in out

    def test_scheduler_hints(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "scheduler_hints.py",
                          ["twolf", "5000"])
        assert "bypass only" in out
        assert "hinted" in out

    def test_tlb_filter(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "tlb_filter.py",
                          ["twolf", "5000"])
        assert "L2 TLB lookups avoided" in out
        assert "violations = 0" in out

    def test_decision_audit(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "decision_audit.py",
                          ["HMNM2", "twolf", "5000"])
        assert "SOUND" in out
        assert "unsound answers" in out
