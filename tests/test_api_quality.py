"""API quality gates: docstrings, exports and size goldens.

These tests enforce the library's documentation contract — every public
module, class and function carries a docstring — and pin the hardware
sizes of the paper's named configurations so an accidental change to a
filter's geometry is caught immediately.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.presets import paper_hierarchy_5level
from repro.core.machine import MostlyNoMachine
from repro.core.presets import parse_design


def all_repro_modules():
    modules = [repro]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        modules.append(importlib.import_module(info.name))
    return modules


class TestDocstrings:
    def test_every_module_documented(self):
        undocumented = [m.__name__ for m in all_repro_modules()
                        if not (m.__doc__ or "").strip()]
        assert not undocumented, f"modules without docstrings: {undocumented}"

    def test_every_public_class_and_function_documented(self):
        undocumented = []
        for module in all_repro_modules():
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                    continue
                if getattr(obj, "__module__", "") != module.__name__:
                    continue  # re-exports documented at their home
                if not (obj.__doc__ or "").strip():
                    undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented, (
            f"public items without docstrings: {undocumented}"
        )

    def test_public_methods_documented_in_core(self):
        """The core package (the paper's contribution) gets the strictest
        gate: every public method documented."""
        import repro.core as core_pkg

        undocumented = []
        for info in pkgutil.walk_packages(core_pkg.__path__,
                                          prefix="repro.core."):
            module = importlib.import_module(info.name)
            for cls_name, cls in vars(module).items():
                if cls_name.startswith("_") or not inspect.isclass(cls):
                    continue
                if cls.__module__ != module.__name__:
                    continue
                for method_name, method in vars(cls).items():
                    if method_name.startswith("_"):
                        continue
                    if not (inspect.isfunction(method)
                            or isinstance(method, property)):
                        continue
                    target = (method.fget if isinstance(method, property)
                              else method)
                    if target is None or not (target.__doc__ or "").strip():
                        # inherited docstrings are fine
                        parent = next(
                            (getattr(base, method_name, None)
                             for base in cls.__mro__[1:]
                             if getattr(base, method_name, None) is not None),
                            None,
                        )
                        parent_target = (
                            parent.fget
                            if isinstance(parent, property) else parent
                        )
                        if parent_target is None or not (
                            getattr(parent_target, "__doc__", "") or ""
                        ).strip():
                            undocumented.append(
                                f"{module.__name__}.{cls_name}.{method_name}"
                            )
        assert not undocumented, undocumented


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__


class TestStorageGoldens:
    """Pinned hardware sizes of the paper's named configurations.

    The numbers encode each structure's geometry (tags + lanes for the
    RMNM, Σi² flip-flops for the SMNM, counters for TMNM/CMNM plus the
    virtual-tag finder); a diff here means a filter's geometry changed.
    """

    # the 5-level hierarchy tracks 5 caches (il2, dl2, ul3, ul4, ul5), so
    # a shared RMNM carries 5 lane bits per entry
    @pytest.mark.parametrize("name,expected_bits", [
        ("RMNM_128_1", 128 * ((32 - 7) + 5)),      # 7 index bits
        ("RMNM_4096_8", 4096 * ((32 - 9) + 5)),    # 512 sets -> 9 index bits
        ("TMNM_10x1", 5 * 1024 * 3),
        ("TMNM_12x3", 5 * 3 * 4096 * 3),
        ("SMNM_10x2", 5 * 2 * 386),
        ("PERFECT", 0),
    ])
    def test_design_storage(self, name, expected_bits):
        machine = MostlyNoMachine(
            CacheHierarchy(paper_hierarchy_5level()), parse_design(name)
        )
        assert machine.storage_bits == expected_bits

    def test_hmnm4_size_order(self):
        """HMNM4 lands in the tens-of-KB range — small next to the 2.7MB
        of caches it guards, the paper's central cost claim."""
        machine = MostlyNoMachine(
            CacheHierarchy(paper_hierarchy_5level()), parse_design("HMNM4")
        )
        size_kb = machine.storage_bits / 8 / 1024
        assert 20 < size_kb < 100
        cache_kb = sum(
            cache.config.size_bytes for _, cache in machine.hierarchy.all_caches()
        ) / 1024
        assert size_kb < cache_kb / 20