"""Reference-model cross-check for the hierarchy simulator.

Rebuilds the hierarchy's expected behaviour with an independent, brutally
simple model (dicts of sets with explicit LRU lists) and checks the real
simulator against it access by access.  A divergence anywhere in the
probe/fill/evict plumbing shows up as a contents mismatch here even if no
individual unit test covers that path.
"""

import random
from collections import OrderedDict

from hypothesis import given, settings, strategies as st

from repro.cache.cache import AccessKind
from repro.cache.hierarchy import CacheHierarchy, MEMORY_TIER
from tests.conftest import small_hierarchy_config


class _ModelCache:
    """Independent set-associative LRU cache model (naive on purpose)."""

    def __init__(self, config):
        self.block_bits = config.offset_bits
        self.num_sets = config.num_sets
        self.assoc = config.associativity
        # per set: OrderedDict of block addr -> None, LRU first
        self.sets = [OrderedDict() for _ in range(self.num_sets)]

    def _locate(self, address):
        blk = address >> self.block_bits
        return blk, blk & (self.num_sets - 1)

    def contains(self, address):
        blk, set_index = self._locate(address)
        return blk in self.sets[set_index]

    def touch(self, address):
        blk, set_index = self._locate(address)
        if blk in self.sets[set_index]:
            self.sets[set_index].move_to_end(blk)
            return True
        return False

    def fill(self, address):
        blk, set_index = self._locate(address)
        entries = self.sets[set_index]
        if blk in entries:
            entries.move_to_end(blk)
            return
        if len(entries) >= self.assoc:
            entries.popitem(last=False)
        entries[blk] = None

    def blocks(self):
        result = set()
        for entries in self.sets:
            result.update(entries)
        return result


class _ModelHierarchy:
    """Three-tier reference model mirroring the simulator's semantics."""

    def __init__(self, config):
        self.config = config
        self.caches = []  # per tier: dict kind-side -> _ModelCache
        for tier in config.tiers:
            if tier.unified is not None:
                model = _ModelCache(tier.unified)
                self.caches.append({"i": model, "d": model})
            else:
                self.caches.append({
                    "i": _ModelCache(tier.instruction),
                    "d": _ModelCache(tier.data),
                })

    def access(self, address, kind):
        side = "i" if kind is AccessKind.INSTRUCTION else "d"
        supplier = None
        for tier_index, tier in enumerate(self.caches, start=1):
            if tier[side].touch(address):
                supplier = tier_index
                break
        limit = len(self.caches) if supplier is None else supplier - 1
        for tier_index in range(limit, 0, -1):
            self.caches[tier_index - 1][side].fill(address)
        return supplier


@settings(max_examples=20, deadline=None)
@given(st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=(1 << 14) - 1),
        st.sampled_from([AccessKind.INSTRUCTION, AccessKind.LOAD,
                         AccessKind.STORE]),
    ),
    min_size=10, max_size=500,
))
def test_hierarchy_matches_reference_model(references):
    config = small_hierarchy_config(3)
    real = CacheHierarchy(config)
    model = _ModelHierarchy(config)

    for address, kind in references:
        outcome = real.access(address, kind)
        expected_supplier = model.access(address, kind)
        actual = None if outcome.supplier is MEMORY_TIER else outcome.supplier
        assert actual == expected_supplier, (
            f"supplier mismatch at {address:#x} ({kind.value}): "
            f"real={actual} model={expected_supplier}"
        )

    # final contents must agree cache by cache
    side_of = {"il1": "i", "dl1": "d", "ul2": "d", "ul3": "d"}
    for tier_index, caches in enumerate(model.caches, start=1):
        for kind, side in (("i", AccessKind.INSTRUCTION),
                           ("d", AccessKind.LOAD)):
            real_cache = real.cache_for(tier_index, side)
            assert set(real_cache.resident_blocks()) == caches[kind].blocks(), (
                f"contents mismatch at tier {tier_index} side {kind}"
            )


def test_reference_model_sanity():
    """The model itself behaves like a cache (guards the guard)."""
    config = small_hierarchy_config(3)
    model = _ModelHierarchy(config)
    assert model.access(0x1000, AccessKind.LOAD) is None     # cold
    assert model.access(0x1000, AccessKind.LOAD) == 1        # L1 hit
    assert model.access(0x1100, AccessKind.LOAD) is None     # conflict fill
    assert model.access(0x1000, AccessKind.LOAD) == 2        # L2 catch
