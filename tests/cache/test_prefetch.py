"""Tests for the next-line prefetcher."""

import random

import pytest

from repro.cache.cache import AccessKind
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.prefetch import NextLinePrefetcher
from repro.core.machine import MostlyNoMachine
from repro.core.presets import hmnm_design
from repro.simulate import build_memory
from tests.conftest import random_references, small_hierarchy_config


def make_prefetching_hierarchy(degree=1):
    hierarchy = CacheHierarchy(small_hierarchy_config(3))
    return hierarchy, NextLinePrefetcher(hierarchy, degree=degree)


class TestNextLinePrefetcher:
    def test_miss_triggers_next_block(self):
        hierarchy, prefetcher = make_prefetching_hierarchy()
        outcome = hierarchy.access(0x1000, AccessKind.LOAD)  # cold miss
        prefetcher.on_demand_access(0x1000, AccessKind.LOAD, outcome)
        # next 16B block now resident without a demand access
        assert hierarchy.cache_for(1, AccessKind.LOAD).contains(0x1010)
        assert prefetcher.issued == 1

    def test_hits_do_not_trigger(self):
        hierarchy, prefetcher = make_prefetching_hierarchy()
        hierarchy.access(0x1000, AccessKind.LOAD)
        outcome = hierarchy.access(0x1000, AccessKind.LOAD)  # L1 hit
        assert prefetcher.on_demand_access(0x1000, AccessKind.LOAD,
                                           outcome) == 0

    def test_degree_controls_lookahead(self):
        hierarchy, prefetcher = make_prefetching_hierarchy(degree=3)
        outcome = hierarchy.access(0x1000, AccessKind.LOAD)
        prefetcher.on_demand_access(0x1000, AccessKind.LOAD, outcome)
        dl1 = hierarchy.cache_for(1, AccessKind.LOAD)
        for step in (1, 2, 3):
            assert dl1.contains(0x1000 + step * 16)
        assert prefetcher.issued == 3

    def test_duplicate_prefetches_suppressed(self):
        hierarchy, prefetcher = make_prefetching_hierarchy()
        outcome = hierarchy.access(0x1000, AccessKind.LOAD)
        prefetcher.on_demand_access(0x1000, AccessKind.LOAD, outcome)
        prefetcher.on_demand_access(0x1004, AccessKind.LOAD, outcome)
        assert prefetcher.issued == 1
        assert prefetcher.suppressed == 1

    def test_instruction_side_switch(self):
        hierarchy = CacheHierarchy(small_hierarchy_config(3))
        prefetcher = NextLinePrefetcher(hierarchy, instruction_side=False)
        outcome = hierarchy.access(0x400000, AccessKind.INSTRUCTION)
        assert prefetcher.on_demand_access(
            0x400000, AccessKind.INSTRUCTION, outcome) == 0

    def test_reset(self):
        hierarchy, prefetcher = make_prefetching_hierarchy()
        outcome = hierarchy.access(0x1000, AccessKind.LOAD)
        prefetcher.on_demand_access(0x1000, AccessKind.LOAD, outcome)
        prefetcher.reset()
        assert prefetcher.issued == 0

    def test_validation(self):
        hierarchy = CacheHierarchy(small_hierarchy_config(3))
        with pytest.raises(ValueError):
            NextLinePrefetcher(hierarchy, degree=0)
        with pytest.raises(ValueError):
            NextLinePrefetcher(hierarchy, tag_capacity=0)


class TestPrefetchingMemorySystem:
    def test_sequential_stream_benefits(self):
        plain = build_memory(small_hierarchy_config(3))
        prefetching = build_memory(small_hierarchy_config(3),
                                   prefetch_degree=2)
        addresses = [0x8000 + 8 * i for i in range(600)]
        plain_latency = sum(plain.access(a, AccessKind.LOAD)
                            for a in addresses)
        prefetch_latency = sum(prefetching.access(a, AccessKind.LOAD)
                               for a in addresses)
        assert prefetch_latency < plain_latency

    def test_prefetch_fills_train_mnm_soundly(self):
        rng = random.Random(7)
        memory = build_memory(small_hierarchy_config(3), hmnm_design(2),
                              prefetch_degree=2)
        for address, kind in random_references(rng, 2500, span=1 << 14):
            memory.access(address, kind)
        assert memory.coverage.violations == 0
