"""Tests for replacement policies."""

import pytest

from repro.cache.replacement import (
    FIFOPolicy,
    LRUPolicy,
    PLRUPolicy,
    RandomPolicy,
    make_policy,
)


class TestLRU:
    def test_victim_is_least_recent(self):
        policy = LRUPolicy(num_sets=1, associativity=4)
        for way in range(4):
            policy.on_fill(0, way)
        policy.on_hit(0, 0)  # 0 becomes most recent
        assert policy.victim(0) == 1

    def test_hits_refresh_recency(self):
        policy = LRUPolicy(1, 2)
        policy.on_fill(0, 0)
        policy.on_fill(0, 1)
        policy.on_hit(0, 0)
        assert policy.victim(0) == 1

    def test_sets_are_independent(self):
        policy = LRUPolicy(2, 2)
        policy.on_fill(0, 1)
        # set 1 untouched: victim there is still the initial order
        assert policy.victim(1) == 0
        assert policy.victim(0) == 0

    def test_reset_restores_initial_order(self):
        policy = LRUPolicy(1, 3)
        policy.on_hit(0, 0)
        policy.reset()
        assert policy.victim(0) == 0


class TestFIFO:
    def test_hits_do_not_refresh(self):
        policy = FIFOPolicy(1, 2)
        policy.on_fill(0, 0)
        policy.on_fill(0, 1)
        policy.on_hit(0, 0)  # FIFO ignores hits
        assert policy.victim(0) == 0

    def test_fill_order_decides(self):
        policy = FIFOPolicy(1, 3)
        for way in (2, 0, 1):
            policy.on_fill(0, way)
        assert policy.victim(0) == 2


class TestRandom:
    def test_deterministic_under_seed(self):
        a = RandomPolicy(1, 8, seed=7)
        b = RandomPolicy(1, 8, seed=7)
        assert [a.victim(0) for _ in range(20)] == [b.victim(0) for _ in range(20)]

    def test_victims_in_range(self):
        policy = RandomPolicy(1, 4, seed=1)
        assert all(0 <= policy.victim(0) < 4 for _ in range(100))

    def test_reset_replays_sequence(self):
        policy = RandomPolicy(1, 4, seed=3)
        first = [policy.victim(0) for _ in range(10)]
        policy.reset()
        assert [policy.victim(0) for _ in range(10)] == first


class TestPLRU:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            PLRUPolicy(1, 3)

    def test_single_way(self):
        policy = PLRUPolicy(1, 1)
        policy.on_fill(0, 0)
        assert policy.victim(0) == 0

    def test_victim_avoids_recent_touch(self):
        policy = PLRUPolicy(1, 4)
        for way in range(4):
            policy.on_fill(0, way)
        # way 3 touched last; tree points away from it
        assert policy.victim(0) != 3

    def test_covers_all_ways_eventually(self):
        policy = PLRUPolicy(1, 8)
        seen = set()
        for _ in range(64):
            victim = policy.victim(0)
            seen.add(victim)
            policy.on_fill(0, victim)
        assert seen == set(range(8))

    def test_reset_clears_tree(self):
        policy = PLRUPolicy(1, 4)
        policy.on_hit(0, 3)
        policy.reset()
        assert policy.victim(0) == 0


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("lru", LRUPolicy), ("fifo", FIFOPolicy),
        ("random", RandomPolicy), ("plru", PLRUPolicy),
        ("LRU", LRUPolicy),
    ])
    def test_make_policy(self, name, cls):
        assert isinstance(make_policy(name, 4, 2), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown replacement policy"):
            make_policy("mru", 4, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            LRUPolicy(0, 2)
        with pytest.raises(ValueError):
            LRUPolicy(2, 0)
