"""Tests for the single-cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.cache import AccessKind, Cache, CacheConfig, CacheSide


def make_cache(size=512, assoc=2, block=32, replacement="lru") -> Cache:
    return Cache(CacheConfig(
        name="c", level=1, size_bytes=size, associativity=assoc,
        block_size=block, hit_latency=2, replacement=replacement,
    ))


class TestConfig:
    def test_derived_geometry(self):
        config = make_cache(size=4096, assoc=1, block=32).config
        assert config.num_blocks == 128
        assert config.num_sets == 128
        assert config.index_bits == 7
        assert config.offset_bits == 5

    def test_miss_latency_defaults_to_hit(self):
        config = make_cache().config
        assert config.effective_miss_latency == config.hit_latency

    def test_explicit_miss_latency(self):
        config = CacheConfig(name="c", level=1, size_bytes=512,
                             associativity=2, block_size=32, hit_latency=4,
                             miss_latency=2)
        assert config.effective_miss_latency == 2

    @pytest.mark.parametrize("kwargs", [
        dict(size_bytes=500),             # not a power of two
        dict(block_size=48),              # not a power of two
        dict(associativity=0),
        dict(hit_latency=0),
        dict(level=0),
        dict(ports=0),
    ])
    def test_rejects_bad_parameters(self, kwargs):
        base = dict(name="c", level=1, size_bytes=512, associativity=2,
                    block_size=32, hit_latency=2)
        base.update(kwargs)
        with pytest.raises(ValueError):
            CacheConfig(**base)

    def test_describe_units(self):
        assert "4KB" in make_cache(size=4096).config.describe()
        assert "2MB" in make_cache(size=2 * 1024 * 1024, assoc=8).config.describe()

    def test_side_serving(self):
        assert CacheSide.UNIFIED.serves(AccessKind.LOAD)
        assert CacheSide.UNIFIED.serves(AccessKind.INSTRUCTION)
        assert CacheSide.DATA.serves(AccessKind.STORE)
        assert not CacheSide.DATA.serves(AccessKind.INSTRUCTION)
        assert CacheSide.INSTRUCTION.serves(AccessKind.INSTRUCTION)
        assert not CacheSide.INSTRUCTION.serves(AccessKind.LOAD)


class TestProbeAndFill:
    def test_miss_then_hit(self):
        cache = make_cache()
        assert not cache.probe(0x1000)
        cache.fill(0x1000)
        assert cache.probe(0x1000)
        assert cache.stats.probes == 2
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_block_granular_hits(self):
        cache = make_cache(block=32)
        cache.fill(0x1000)
        assert cache.probe(0x101F)   # same block
        assert not cache.probe(0x1020)  # next block

    def test_fill_existing_is_idempotent(self):
        cache = make_cache()
        cache.fill(0x1000)
        assert cache.fill(0x1000) is None
        # a redundant fill brings nothing new in
        assert cache.stats.fills == 1
        assert cache.stats.evictions == 0
        assert cache.occupancy == 1

    def test_eviction_returns_victim(self):
        cache = make_cache(size=64, assoc=1, block=32)  # 2 sets
        cache.fill(0x0)          # set 0
        victim = cache.fill(0x40)  # set 0 again -> evicts block 0
        assert victim == 0
        assert not cache.contains(0x0)
        assert cache.contains(0x40)

    def test_lru_eviction_order(self):
        cache = make_cache(size=64, assoc=2, block=32)  # 1 set, 2 ways
        cache.fill(0x0)
        cache.fill(0x20)
        cache.probe(0x0)          # refresh block 0
        victim = cache.fill(0x40)
        assert victim == 1        # block of 0x20

    def test_write_sets_dirty(self):
        cache = make_cache(size=64, assoc=1, block=32)
        cache.fill(0x0)
        cache.probe(0x0, write=True)
        cache.fill(0x40)  # evicts dirty block
        assert cache.stats.dirty_evictions == 1

    def test_fill_dirty_flag(self):
        cache = make_cache(size=64, assoc=1, block=32)
        cache.fill(0x0, dirty=True)
        cache.fill(0x40)
        assert cache.stats.dirty_evictions == 1

    def test_flush_empties_but_keeps_stats(self):
        cache = make_cache()
        cache.fill(0x1000)
        cache.probe(0x1000)
        cache.flush()
        assert cache.occupancy == 0
        assert not cache.contains(0x1000)
        assert cache.stats.hits == 1  # stats preserved

    def test_refill_after_flush(self):
        cache = make_cache()
        cache.fill(0x1000)
        cache.flush()
        cache.fill(0x1000)
        assert cache.contains(0x1000)

    def test_contains_does_not_touch_stats(self):
        cache = make_cache()
        cache.contains(0x1000)
        assert cache.stats.probes == 0


class TestEvents:
    def test_place_listener_fires_on_fill(self):
        cache = make_cache()
        placed = []
        cache.add_place_listener(lambda c, blk: placed.append(blk))
        cache.fill(0x1000)
        assert placed == [cache.block_addr(0x1000)]

    def test_no_event_on_redundant_fill(self):
        cache = make_cache()
        placed = []
        cache.add_place_listener(lambda c, blk: placed.append(blk))
        cache.fill(0x1000)
        cache.fill(0x1000)
        assert len(placed) == 1

    def test_replace_fires_before_place(self):
        cache = make_cache(size=64, assoc=1, block=32)
        events = []
        cache.add_place_listener(lambda c, blk: events.append(("place", blk)))
        cache.add_replace_listener(lambda c, blk: events.append(("replace", blk)))
        cache.fill(0x0)
        cache.fill(0x40)
        assert events == [("place", 0), ("replace", 0), ("place", 2)]

    def test_flush_fires_no_events(self):
        cache = make_cache()
        cache.fill(0x1000)
        events = []
        cache.add_replace_listener(lambda c, blk: events.append(blk))
        cache.flush()
        assert events == []


class TestOccupancyInvariants:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=0xFFFF), min_size=1,
                    max_size=300))
    def test_occupancy_never_exceeds_capacity(self, addresses):
        cache = make_cache(size=256, assoc=2, block=16)
        for address in addresses:
            if not cache.probe(address):
                cache.fill(address)
            assert cache.occupancy <= cache.config.num_blocks
        # everything resident is found by contains
        for blk in cache.resident_blocks():
            assert cache.contains_block(blk)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=0xFFFF), min_size=1,
                    max_size=300))
    def test_event_stream_mirrors_contents(self, addresses):
        """Replaying the place/replace events reconstructs the cache."""
        cache = make_cache(size=256, assoc=2, block=16)
        mirror = set()
        cache.add_place_listener(lambda c, blk: mirror.add(blk))
        cache.add_replace_listener(lambda c, blk: mirror.discard(blk))
        for address in addresses:
            if not cache.probe(address):
                cache.fill(address)
        assert mirror == set(cache.resident_blocks())
