"""Integration tests: replacement policies inside caches and hierarchies."""

import random

import pytest

from repro.cache.cache import AccessKind, Cache, CacheConfig
from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig, TierConfig
from repro.cache.presets import paper_hierarchy_5level
from repro.core.machine import MostlyNoMachine
from repro.core.presets import rmnm_design
from tests.conftest import random_references, small_hierarchy_config


def replace_policy(config: HierarchyConfig, policy: str) -> HierarchyConfig:
    """Clone a hierarchy config with every cache using ``policy``."""
    from dataclasses import replace

    tiers = []
    for tier in config.tiers:
        if tier.unified is not None:
            tiers.append(TierConfig.make_unified(
                replace(tier.unified, replacement=policy)))
        else:
            tiers.append(TierConfig.make_split(
                replace(tier.instruction, replacement=policy),
                replace(tier.data, replacement=policy),
            ))
    return HierarchyConfig(
        name=f"{config.name}-{policy}",
        tiers=tuple(tiers),
        memory_latency=config.memory_latency,
    )


class TestPolicyInCache:
    @pytest.mark.parametrize("policy", ["lru", "fifo", "random", "plru"])
    def test_cache_works_under_every_policy(self, policy):
        cache = Cache(CacheConfig(
            name="c", level=1, size_bytes=512, associativity=4,
            block_size=32, hit_latency=1, replacement=policy,
        ))
        rng = random.Random(0)
        for _ in range(2000):
            address = rng.randrange(1 << 12) & ~3
            if not cache.probe(address):
                cache.fill(address)
            assert cache.occupancy <= cache.config.num_blocks

    def test_lru_beats_fifo_on_reuse_pattern(self):
        """Hit-refreshing (LRU) must win on a scan+reuse mix."""
        def hit_rate(policy):
            cache = Cache(CacheConfig(
                name="c", level=1, size_bytes=256, associativity=8,
                block_size=32, hit_latency=1, replacement=policy,
            ))
            hits = probes = 0
            hot = 0x1000
            rng = random.Random(1)
            for step in range(4000):
                address = hot if step % 2 == 0 else (
                    0x8000 + rng.randrange(64) * 32)
                probes += 1
                if cache.probe(address):
                    hits += 1
                else:
                    cache.fill(address)
            return hits / probes

        assert hit_rate("lru") >= hit_rate("fifo")


class TestPolicyInHierarchy:
    @pytest.mark.parametrize("policy", ["lru", "fifo", "plru"])
    def test_hierarchy_and_rmnm_sound_under_policy(self, policy):
        """The RMNM feeds on the replacement stream; it must stay sound
        whatever policy produces that stream."""
        config = replace_policy(small_hierarchy_config(3), policy)
        hierarchy = CacheHierarchy(config)
        machine = MostlyNoMachine(hierarchy, rmnm_design(256, 2))
        rng = random.Random(hash(policy) & 0xFFFF)
        for address, kind in random_references(rng, 2500, span=1 << 14):
            bits = machine.query(address, kind)
            outcome = hierarchy.access(address, kind)
            supplier = outcome.supplier
            if supplier is not None and supplier >= 2:
                assert not bits[supplier - 1]

    def test_policy_changes_the_replacement_stream(self):
        """Different policies must actually produce different behaviour
        (otherwise the ablation measures nothing)."""
        def evictions(policy):
            config = replace_policy(paper_hierarchy_5level(), policy)
            hierarchy = CacheHierarchy(config)
            rng = random.Random(42)
            for address, kind in random_references(rng, 4000,
                                                   span=1 << 18):
                hierarchy.access(address, kind)
            return tuple(cache.stats.evictions
                         for _, cache in hierarchy.all_caches())

        assert evictions("lru") != evictions("fifo")
