"""Tests for the inclusive-hierarchy option and invalidate_range."""

import random

import pytest

from repro.cache.cache import AccessKind, Cache, CacheConfig
from repro.cache.hierarchy import CacheHierarchy
from repro.core.machine import MostlyNoMachine
from repro.core.presets import hmnm_design, perfect_design
from tests.conftest import random_references, small_hierarchy_config


class TestInvalidateRange:
    def make_cache(self):
        return Cache(CacheConfig(name="c", level=1, size_bytes=512,
                                 associativity=2, block_size=32,
                                 hit_latency=1))

    def test_invalidate_single_block(self):
        cache = self.make_cache()
        cache.fill(0x1000)
        assert cache.invalidate_range(0x1000, 32) == 1
        assert not cache.contains(0x1000)

    def test_invalidate_covers_larger_outer_block(self):
        cache = self.make_cache()
        cache.fill(0x1000)
        cache.fill(0x1020)
        cache.fill(0x1040)
        # a 64B outer block covers the first two 32B inner blocks
        assert cache.invalidate_range(0x1000, 64) == 2
        assert cache.contains(0x1040)

    def test_invalidation_fires_replace_events(self):
        cache = self.make_cache()
        events = []
        cache.add_replace_listener(lambda c, blk: events.append(blk))
        cache.fill(0x1000)
        cache.invalidate_range(0x1000, 32)
        assert events == [cache.block_addr(0x1000)]

    def test_missing_blocks_ignored(self):
        cache = self.make_cache()
        assert cache.invalidate_range(0x1000, 128) == 0

    def test_way_reusable_after_invalidation(self):
        cache = self.make_cache()
        cache.fill(0x1000)
        cache.invalidate_range(0x1000, 32)
        cache.fill(0x1000)
        assert cache.contains(0x1000)
        assert cache.occupancy == 1


class TestInclusiveHierarchy:
    def test_outer_eviction_back_invalidates_l1(self):
        hierarchy = CacheHierarchy(small_hierarchy_config(3), inclusive=True)
        hierarchy.access(0x1000, AccessKind.LOAD)
        dl1 = hierarchy.cache_for(1, AccessKind.LOAD)
        ul2 = hierarchy.find_cache("ul2")
        assert dl1.contains(0x1000)
        # evict 0x1000 from ul2 by conflicting fills
        blk = ul2.block_addr(0x1000)
        for k in range(1, ul2.config.associativity + 1):
            ul2.fill((blk + k * ul2.config.num_sets) << ul2.config.offset_bits)
        assert not ul2.contains(0x1000)
        assert not dl1.contains(0x1000)  # back-invalidated
        assert hierarchy.back_invalidations >= 1

    def test_non_inclusive_default_keeps_l1(self):
        hierarchy = CacheHierarchy(small_hierarchy_config(3))
        hierarchy.access(0x1000, AccessKind.LOAD)
        ul2 = hierarchy.find_cache("ul2")
        blk = ul2.block_addr(0x1000)
        for k in range(1, ul2.config.associativity + 1):
            ul2.fill((blk + k * ul2.config.num_sets) << ul2.config.offset_bits)
        assert hierarchy.cache_for(1, AccessKind.LOAD).contains(0x1000)
        assert hierarchy.back_invalidations == 0

    def test_inclusion_invariant_holds_under_load(self):
        """After any access stream, every L1-resident block is also in the
        L2+ caches (the defining inclusive invariant)."""
        rng = random.Random(2)
        hierarchy = CacheHierarchy(small_hierarchy_config(3), inclusive=True)
        for address, kind in random_references(rng, 3000, span=1 << 14):
            hierarchy.access(address, kind)
        ul2 = hierarchy.find_cache("ul2")
        for l1 in hierarchy.caches_at(1):
            for blk in l1.resident_blocks():
                byte_address = blk << l1.config.offset_bits
                assert ul2.contains(byte_address), (
                    f"{l1.config.name} holds {byte_address:#x} but ul2 "
                    "does not — inclusion violated"
                )

    def test_back_invalidation_counts_sum_to_total(self):
        """The per-victim-cache split must account for every drop, and the
        exported ``cache.<name>.back_invalidations`` counters must equal
        the in-object split exactly."""
        from repro.telemetry import MetricsRegistry

        rng = random.Random(5)
        hierarchy = CacheHierarchy(small_hierarchy_config(3), inclusive=True)
        for address, kind in random_references(rng, 4000, span=1 << 14):
            hierarchy.access(address, kind)
        assert hierarchy.back_invalidations >= 1  # stream must exercise it
        assert (sum(hierarchy.back_invalidation_counts.values())
                == hierarchy.back_invalidations)
        registry = MetricsRegistry()
        hierarchy.export_stats(registry)
        counters = registry.snapshot()["counters"]
        for name, dropped in hierarchy.back_invalidation_counts.items():
            assert counters[f"cache.{name}.back_invalidations"] == dropped
        # no phantom counters for caches that never lost a block
        exported = {key for key in counters
                    if key.endswith(".back_invalidations")}
        expected = {f"cache.{name}"
                    f".back_invalidations"
                    for name, dropped in
                    hierarchy.back_invalidation_counts.items() if dropped}
        assert exported == expected

    def test_non_inclusive_exports_no_back_invalidation_counters(self):
        from repro.telemetry import MetricsRegistry

        rng = random.Random(5)
        hierarchy = CacheHierarchy(small_hierarchy_config(3))
        for address, kind in random_references(rng, 2000, span=1 << 14):
            hierarchy.access(address, kind)
        registry = MetricsRegistry()
        hierarchy.export_stats(registry)
        counters = registry.snapshot()["counters"]
        assert not any(key.endswith(".back_invalidations")
                       for key in counters)

    def test_mnm_stays_sound_under_inclusion(self):
        """Back-invalidations are replacements the filters must observe."""
        rng = random.Random(8)
        hierarchy = CacheHierarchy(small_hierarchy_config(3), inclusive=True)
        machine = MostlyNoMachine(hierarchy, hmnm_design(2))
        for address, kind in random_references(rng, 3000, span=1 << 14):
            bits = machine.query(address, kind)
            outcome = hierarchy.access(address, kind)
            supplier = outcome.supplier
            if supplier is not None and supplier >= 2:
                assert not bits[supplier - 1]

    def test_perfect_filter_tracks_inclusive_contents(self):
        rng = random.Random(13)
        hierarchy = CacheHierarchy(small_hierarchy_config(3), inclusive=True)
        machine = MostlyNoMachine(hierarchy, perfect_design())
        for address, kind in random_references(rng, 2000, span=1 << 14):
            machine.query(address, kind)
            hierarchy.access(address, kind)
        # oracle sets must exactly mirror cache contents at the granule level
        from repro.core.perfect import PerfectFilter

        for name in machine.tracked_cache_names():
            cache = hierarchy.find_cache(name)
            filter_ = machine.filter_for(name)
            assert isinstance(filter_, PerfectFilter)
            expected = set()
            fanout = cache.config.block_size // machine.granule
            for blk in cache.resident_blocks():
                first = blk * fanout
                expected.update(range(first, first + fanout))
            assert filter_.resident_granules == expected, name
