"""Tests for the TLB substrate (Section 4.5 extension)."""

import random

import pytest

from repro.cache.tlb import (
    PAGE_SIZE,
    TLBConfig,
    TranslationBuffer,
    TwoLevelTLB,
    default_tlb_pair,
)
from repro.core.tmnm import TMNM
from repro.core.perfect import PerfectFilter


def small_pair():
    return (
        TLBConfig(name="tlb1", entries=4, associativity=4, hit_latency=1),
        TLBConfig(name="tlb2", entries=16, associativity=4, hit_latency=3),
    )


class TestTLBConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TLBConfig(name="t", entries=48, associativity=1, hit_latency=1)
        with pytest.raises(ValueError):
            TLBConfig(name="t", entries=16, associativity=3, hit_latency=1)
        with pytest.raises(ValueError):
            TLBConfig(name="t", entries=16, associativity=4, hit_latency=0)


class TestTranslationBuffer:
    def test_page_granularity(self):
        buffer = TranslationBuffer(small_pair()[0])
        buffer.install(0x1000)
        assert buffer.lookup(0x1FFF)       # same page
        assert not buffer.lookup(0x2000)   # next page

    def test_capacity_eviction(self):
        buffer = TranslationBuffer(small_pair()[0])  # 4 entries, FA
        for page in range(5):
            buffer.install(page * PAGE_SIZE)
        assert not buffer.holds(0)  # LRU victim

    def test_filter_attachment(self):
        buffer = TranslationBuffer(small_pair()[0])
        oracle = PerfectFilter()
        buffer.attach_filter(oracle)
        buffer.install(0x5000)
        assert not oracle.is_definite_miss(5)
        for page in range(1, 6):
            buffer.install(page * PAGE_SIZE + 0x10000)
        assert oracle.is_definite_miss(5)  # evicted and observed


class TestTwoLevelTLB:
    def test_miss_then_hits(self):
        tlb = TwoLevelTLB(*small_pair(), walk_latency=50)
        first = tlb.translate(0x4000)
        assert not first.l1_hit and not first.l2_hit
        assert first.latency == 1 + 3 + 50
        second = tlb.translate(0x4000)
        assert second.l1_hit
        assert second.latency == 1

    def test_l2_catches_l1_evictions(self):
        tlb = TwoLevelTLB(*small_pair(), walk_latency=50)
        pages = [k * PAGE_SIZE for k in range(6)]
        for address in pages:
            tlb.translate(address)
        result = tlb.translate(pages[0])   # out of L1, still in L2
        assert not result.l1_hit and result.l2_hit
        assert result.latency == 1 + 3

    def test_filter_bypasses_l2_on_cold_misses(self):
        tlb = TwoLevelTLB(*small_pair(), walk_latency=50,
                          miss_filter=TMNM(6, 2))
        result = tlb.translate(0x9000)
        assert result.l2_bypassed
        assert result.latency == 1 + 50          # no L2 lookup charge
        assert tlb.bypasses == 1
        assert tlb.filter_violations == 0

    def test_filter_never_bypasses_resident_translations(self):
        rng = random.Random(4)
        tlb = TwoLevelTLB(*small_pair(), walk_latency=50,
                          miss_filter=TMNM(6, 2))
        for _ in range(3000):
            tlb.translate(rng.randrange(64) * PAGE_SIZE)
        assert tlb.filter_violations == 0

    def test_flush_clears_everything(self):
        tlb = TwoLevelTLB(*small_pair(), walk_latency=50,
                          miss_filter=TMNM(6, 2))
        tlb.translate(0x4000)
        tlb.flush()
        result = tlb.translate(0x4000)
        assert not result.l1_hit and not result.l2_hit

    def test_default_pair_sane(self):
        l1, l2 = default_tlb_pair()
        assert l1.entries < l2.entries
        tlb = TwoLevelTLB(l1, l2)
        assert tlb.translate(0x1234_5678).latency >= 1

    def test_walk_latency_validated(self):
        with pytest.raises(ValueError):
            TwoLevelTLB(*small_pair(), walk_latency=0)

    def test_filtered_tlb_never_slower(self):
        """Bypassing can only remove L2 lookup time."""
        rng = random.Random(9)
        addresses = [rng.randrange(256) * PAGE_SIZE for _ in range(4000)]
        plain = TwoLevelTLB(*small_pair(), walk_latency=50)
        filtered = TwoLevelTLB(*small_pair(), walk_latency=50,
                               miss_filter=TMNM(7, 2))
        plain_total = sum(plain.translate(a).latency for a in addresses)
        filtered_total = sum(filtered.translate(a).latency for a in addresses)
        assert filtered_total <= plain_total
        assert filtered.filter_violations == 0
