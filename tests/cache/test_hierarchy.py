"""Tests for the multi-level hierarchy model."""

import pytest

from repro.cache.cache import AccessKind, CacheConfig, CacheSide
from repro.cache.hierarchy import (
    MEMORY_TIER,
    AccessOutcome,
    CacheHierarchy,
    HierarchyConfig,
    TierConfig,
)
from tests.conftest import small_hierarchy_config


class TestTierConfig:
    def test_split_tier_requires_both_sides(self):
        inst = CacheConfig(name="i", level=1, size_bytes=256, associativity=1,
                           block_size=16, hit_latency=1,
                           side=CacheSide.INSTRUCTION)
        with pytest.raises(ValueError):
            TierConfig(instruction=inst, data=None)

    def test_unified_excludes_split(self):
        unified = CacheConfig(name="u", level=1, size_bytes=256,
                              associativity=1, block_size=16, hit_latency=1)
        inst = CacheConfig(name="i", level=1, size_bytes=256, associativity=1,
                           block_size=16, hit_latency=1,
                           side=CacheSide.INSTRUCTION)
        with pytest.raises(ValueError):
            TierConfig(unified=unified, instruction=inst,
                       data=None)  # type: ignore[arg-type]

    def test_side_mismatch_rejected(self):
        data_like = CacheConfig(name="d", level=1, size_bytes=256,
                                associativity=1, block_size=16, hit_latency=1,
                                side=CacheSide.DATA)
        with pytest.raises(ValueError):
            TierConfig.make_unified(data_like)

    def test_configs_raises_when_validation_bypassed(self):
        """The split-tier invariant must fire as an explicit raise — not an
        assert — so it survives ``python -O`` (rule R005)."""
        inst = CacheConfig(name="i", level=1, size_bytes=256, associativity=1,
                           block_size=16, hit_latency=1,
                           side=CacheSide.INSTRUCTION)
        broken = object.__new__(TierConfig)
        object.__setattr__(broken, "instruction", inst)
        object.__setattr__(broken, "data", None)
        object.__setattr__(broken, "unified", None)
        with pytest.raises(RuntimeError, match="validation was bypassed"):
            broken.configs

    def test_level_must_match_position(self):
        unified = CacheConfig(name="u", level=3, size_bytes=256,
                              associativity=1, block_size=16, hit_latency=1)
        with pytest.raises(ValueError, match="sits at tier"):
            HierarchyConfig(name="bad",
                            tiers=(TierConfig.make_unified(unified),),
                            memory_latency=10)

    def test_mnm_granule_is_tier2_block_size(self):
        config = small_hierarchy_config(3)
        assert config.mnm_granule == config.tiers[1].unified.block_size


class TestRouting:
    def test_split_tier_routes_by_kind(self, hierarchy3):
        il1 = hierarchy3.cache_for(1, AccessKind.INSTRUCTION)
        dl1 = hierarchy3.cache_for(1, AccessKind.LOAD)
        assert il1.config.name == "il1"
        assert dl1.config.name == "dl1"
        assert hierarchy3.cache_for(1, AccessKind.STORE) is dl1

    def test_unified_tier_serves_everything(self, hierarchy3):
        ul2 = hierarchy3.cache_for(2, AccessKind.INSTRUCTION)
        assert ul2 is hierarchy3.cache_for(2, AccessKind.LOAD)

    def test_find_cache_by_name(self, hierarchy3):
        assert hierarchy3.find_cache("ul2").config.name == "ul2"
        with pytest.raises(LookupError):
            hierarchy3.find_cache("nope")

    def test_all_caches_enumeration(self, hierarchy3):
        names = [cache.config.name for _, cache in hierarchy3.all_caches()]
        assert names == ["il1", "dl1", "ul2", "ul3"]


class TestAccess:
    def test_cold_access_goes_to_memory(self, hierarchy3):
        outcome = hierarchy3.access(0x1000, AccessKind.LOAD)
        assert outcome.supplier is MEMORY_TIER
        assert outcome.hits == (False, False, False)
        assert outcome.tiers_missed == 3

    def test_refill_fills_all_tiers(self, hierarchy3):
        hierarchy3.access(0x1000, AccessKind.LOAD)
        for tier in range(1, 4):
            assert hierarchy3.cache_for(tier, AccessKind.LOAD).contains(0x1000)

    def test_second_access_hits_l1(self, hierarchy3):
        hierarchy3.access(0x1000, AccessKind.LOAD)
        outcome = hierarchy3.access(0x1000, AccessKind.LOAD)
        assert outcome.supplier == 1
        assert outcome.tiers_missed == 0

    def test_l1_eviction_supplied_by_l2(self, hierarchy3):
        hierarchy3.access(0x1000, AccessKind.LOAD)
        # dl1 is 256B direct-mapped with 16B blocks: 0x1000 + 256 conflicts
        hierarchy3.access(0x1100, AccessKind.LOAD)
        outcome = hierarchy3.access(0x1000, AccessKind.LOAD)
        assert outcome.supplier == 2
        assert outcome.tiers_missed == 1

    def test_instruction_and_data_l1_are_independent(self, hierarchy3):
        hierarchy3.access(0x1000, AccessKind.LOAD)
        outcome = hierarchy3.access(0x1000, AccessKind.INSTRUCTION)
        # il1 missed even though dl1 holds it; unified L2 supplies
        assert outcome.supplier == 2

    def test_beyond_supplier_not_probed(self, hierarchy3):
        hierarchy3.access(0x1000, AccessKind.LOAD)
        probes_before = hierarchy3.find_cache("ul3").stats.probes
        hierarchy3.access(0x1000, AccessKind.LOAD)  # L1 hit
        assert hierarchy3.find_cache("ul3").stats.probes == probes_before

    def test_store_marks_l1_dirty(self, hierarchy3):
        hierarchy3.access(0x1000, AccessKind.STORE)
        dl1 = hierarchy3.cache_for(1, AccessKind.STORE)
        hierarchy3.access(0x1100, AccessKind.STORE)  # evicts 0x1000
        assert dl1.stats.dirty_evictions == 1

    def test_where_is_matches_contents(self, hierarchy3):
        assert hierarchy3.where_is(0x1000, AccessKind.LOAD) is MEMORY_TIER
        hierarchy3.access(0x1000, AccessKind.LOAD)
        assert hierarchy3.where_is(0x1000, AccessKind.LOAD) == 1
        hierarchy3.access(0x1100, AccessKind.LOAD)  # evict from L1
        assert hierarchy3.where_is(0x1000, AccessKind.LOAD) == 2

    def test_flush_and_reset_stats(self, hierarchy3):
        hierarchy3.access(0x1000, AccessKind.LOAD)
        hierarchy3.flush()
        assert hierarchy3.where_is(0x1000, AccessKind.LOAD) is MEMORY_TIER
        hierarchy3.reset_stats()
        assert hierarchy3.find_cache("dl1").stats.probes == 0

    def test_run_convenience(self, hierarchy3):
        outcomes = hierarchy3.run([(0x0, AccessKind.LOAD),
                                   (0x0, AccessKind.LOAD)])
        assert outcomes[0].supplier is MEMORY_TIER
        assert outcomes[1].supplier == 1


class TestAccessOutcome:
    def test_candidate_misses_for_memory_supply(self):
        outcome = AccessOutcome(address=0, kind=AccessKind.LOAD,
                                hits=(False, False, False), supplier=None)
        assert outcome.tiers_missed == 3
        assert outcome.mnm_candidate_misses == 2  # tiers 2 and 3

    def test_candidate_misses_paper_example(self):
        # the paper's example: hit in level 4 -> 2 bypassable misses
        outcome = AccessOutcome(address=0, kind=AccessKind.LOAD,
                                hits=(False, False, False, True),
                                supplier=4)
        assert outcome.mnm_candidate_misses == 2

    def test_l1_hit_has_no_candidates(self):
        outcome = AccessOutcome(address=0, kind=AccessKind.LOAD,
                                hits=(True, False, False), supplier=1)
        assert outcome.mnm_candidate_misses == 0

    def test_missed_at(self):
        outcome = AccessOutcome(address=0, kind=AccessKind.LOAD,
                                hits=(False, False, True), supplier=3)
        assert outcome.missed_at(1)
        assert outcome.missed_at(2)
        assert not outcome.missed_at(3)


class TestNonInclusion:
    def test_l2_eviction_leaves_l1_resident(self, hierarchy3):
        """The paper explicitly does not assume inclusion (Section 3)."""
        hierarchy3.access(0x1000, AccessKind.LOAD)
        ul2 = hierarchy3.find_cache("ul2")
        # Evict 0x1000's block from ul2 by filling its set
        blk = ul2.block_addr(0x1000)
        set_index = ul2.set_index(blk)
        conflicting = [
            (blk + k * ul2.config.num_sets) << ul2.config.offset_bits
            for k in range(1, ul2.config.associativity + 1)
        ]
        for address in conflicting:
            ul2.fill(address)
        assert not ul2.contains(0x1000)
        # L1 still holds it: non-inclusive
        assert hierarchy3.cache_for(1, AccessKind.LOAD).contains(0x1000)
