"""Tests for writeback modelling in the hierarchy."""

import random

import pytest

from repro.cache.cache import AccessKind
from repro.cache.hierarchy import CacheHierarchy
from repro.core.machine import MostlyNoMachine
from repro.core.presets import hmnm_design
from tests.conftest import random_references, small_hierarchy_config


def make_hierarchy(writeback=True):
    return CacheHierarchy(small_hierarchy_config(3), writeback=writeback)


class TestWriteback:
    def test_dirty_l1_victim_lands_in_l2(self):
        hierarchy = make_hierarchy()
        hierarchy.access(0x1000, AccessKind.STORE)
        ul2 = hierarchy.find_cache("ul2")
        # Evict 0x1000's ul2 copy so the writeback is observable
        blk = ul2.block_addr(0x1000)
        conflicting = [
            (blk + k * ul2.config.num_sets) << ul2.config.offset_bits
            for k in range(1, ul2.config.associativity + 1)
        ]
        for address in conflicting:
            ul2.fill(address)
        assert not ul2.contains(0x1000)
        # dl1 is 256B DM with 16B blocks: +256 conflicts and evicts dirty
        hierarchy.access(0x1100, AccessKind.LOAD)
        assert ul2.contains(0x1000)  # written back

    def test_clean_victims_do_not_write_back(self):
        hierarchy = make_hierarchy()
        hierarchy.access(0x1000, AccessKind.LOAD)   # clean
        ul2 = hierarchy.find_cache("ul2")
        fills_before = ul2.stats.fills
        hierarchy.access(0x1100, AccessKind.LOAD)   # evicts clean 0x1000
        # ul2 gained exactly the new block, no writeback fill
        assert ul2.stats.fills == fills_before + 1

    def test_memory_writebacks_counted(self):
        hierarchy = make_hierarchy()
        # Dirty a long conflict chain through the last tier
        ul3 = hierarchy.find_cache("ul3")
        span = ul3.config.num_sets * ul3.config.block_size
        for k in range(ul3.config.associativity * 4):
            hierarchy.access(0x1000 + k * span, AccessKind.STORE)
        assert hierarchy.memory_writebacks > 0

    def test_default_is_no_writeback(self):
        hierarchy = make_hierarchy(writeback=False)
        hierarchy.access(0x1000, AccessKind.STORE)
        ul2 = hierarchy.find_cache("ul2")
        blk = ul2.block_addr(0x1000)
        conflicting = [
            (blk + k * ul2.config.num_sets) << ul2.config.offset_bits
            for k in range(1, ul2.config.associativity + 1)
        ]
        for address in conflicting:
            ul2.fill(address)
        hierarchy.access(0x1100, AccessKind.LOAD)
        assert not ul2.contains(0x1000)
        assert hierarchy.memory_writebacks == 0

    def test_writeback_events_keep_mnm_sound(self):
        """Writeback fills fire place events; filters must stay one-sided."""
        rng = random.Random(3)
        hierarchy = make_hierarchy()
        machine = MostlyNoMachine(hierarchy, hmnm_design(2))
        for address, kind in random_references(rng, 2500, span=1 << 14):
            bits = machine.query(address, kind)
            outcome = hierarchy.access(address, kind)
            supplier = outcome.supplier
            if supplier is not None and supplier >= 2:
                assert not bits[supplier - 1]

    def test_last_evicted_dirty_resets(self):
        hierarchy = make_hierarchy()
        dl1 = hierarchy.find_cache("dl1")
        hierarchy.access(0x1000, AccessKind.STORE)
        hierarchy.access(0x1100, AccessKind.LOAD)   # dirty eviction
        hierarchy.access(0x1200, AccessKind.LOAD)   # clean eviction
        assert not dl1.last_evicted_dirty
