"""Tests for the paper's hierarchy presets."""

import pytest

from repro.cache.cache import AccessKind
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.presets import (
    PAPER_MEMORY_LATENCY,
    hierarchy_preset,
    paper_hierarchy_5level,
    preset_names,
)
from repro.power.cacti import cache_access_time_ns


class TestFiveLevelPreset:
    """Section 4.1 specifies the 5-level configuration exactly."""

    def setup_method(self):
        self.config = paper_hierarchy_5level()

    def test_seven_caches_five_tiers(self):
        assert self.config.num_tiers == 5
        assert self.config.num_caches == 7

    def test_l1_parameters(self):
        l1 = self.config.tiers[0]
        assert l1.split
        for cache in l1.configs:
            assert cache.size_bytes == 4 * 1024
            assert cache.associativity == 1
            assert cache.block_size == 32
            assert cache.hit_latency == 2

    def test_l2_parameters(self):
        l2 = self.config.tiers[1]
        assert l2.split
        for cache in l2.configs:
            assert cache.size_bytes == 16 * 1024
            assert cache.associativity == 2
            assert cache.block_size == 32
            assert cache.hit_latency == 8

    @pytest.mark.parametrize("tier,size_kb,assoc,block,latency", [
        (2, 128, 4, 64, 18),
        (3, 512, 4, 128, 34),
        (4, 2048, 8, 128, 70),
    ])
    def test_unified_levels(self, tier, size_kb, assoc, block, latency):
        cache = self.config.tiers[tier].unified
        assert cache.size_bytes == size_kb * 1024
        assert cache.associativity == assoc
        assert cache.block_size == block
        assert cache.hit_latency == latency

    def test_memory_latency(self):
        assert self.config.memory_latency == PAPER_MEMORY_LATENCY == 320

    def test_mnm_granule_is_32(self):
        assert self.config.mnm_granule == 32


class TestAllPresets:
    @pytest.mark.parametrize("name", preset_names())
    def test_presets_build_and_simulate(self, name):
        hierarchy = CacheHierarchy(hierarchy_preset(name))
        outcome = hierarchy.access(0x1234_5678, AccessKind.LOAD)
        assert outcome.supplier is None  # cold miss to memory
        outcome = hierarchy.access(0x1234_5678, AccessKind.LOAD)
        assert outcome.supplier == 1

    @pytest.mark.parametrize("name", preset_names())
    def test_latencies_grow_outward(self, name):
        config = hierarchy_preset(name)
        latencies = [max(c.hit_latency for c in tier.configs)
                     for tier in config.tiers]
        assert latencies == sorted(latencies)
        assert config.memory_latency > latencies[-1]

    @pytest.mark.parametrize("name", preset_names())
    def test_capacity_grows_outward(self, name):
        config = hierarchy_preset(name)
        sizes = [max(c.size_bytes for c in tier.configs)
                 for tier in config.tiers]
        assert sizes == sorted(sizes)

    @pytest.mark.parametrize("name", preset_names())
    def test_latency_ordering_matches_physical_model(self, name):
        """Preset latencies should be ordered like a physical access-time
        model orders the organisations."""
        config = hierarchy_preset(name)
        caches = [tier.configs[0] for tier in config.tiers]
        model_times = [cache_access_time_ns(c) for c in caches]
        assert model_times == sorted(model_times)

    def test_depth_ladder(self):
        depths = [len(hierarchy_preset(n).tiers) for n in preset_names()]
        assert depths == [2, 3, 5, 7]

    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown hierarchy preset"):
            hierarchy_preset("9level")
