"""Tests for the text-table renderer."""

import pytest

from repro.analysis.report import TextTable, banner, format_percent


class TestTextTable:
    def test_basic_render(self):
        table = TextTable(["app", "coverage"])
        table.add_row(["gcc", 0.531])
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0].startswith("app")
        assert "-+-" in lines[1]
        assert "gcc" in lines[2]
        assert "0.531" in lines[2]

    def test_float_digits(self):
        table = TextTable(["x", "y"], float_digits=1)
        table.add_row(["a", 0.987])
        assert "1.0" in table.render()

    def test_none_renders_dash(self):
        table = TextTable(["x", "y"])
        table.add_row(["a", None])
        assert "-" in table.render().splitlines()[2]

    def test_column_widths_expand(self):
        table = TextTable(["x"])
        table.add_row(["a-very-long-cell"])
        header, rule, row = table.render().splitlines()
        assert len(rule) >= len("a-very-long-cell")

    def test_numbers_right_aligned_labels_left(self):
        table = TextTable(["name", "value"])
        table.add_row(["ab", 1])
        row = table.render().splitlines()[2]
        assert row.startswith("ab")
        assert row.rstrip().endswith("1")

    def test_row_length_checked(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(["only-one"])

    def test_str_equals_render(self):
        table = TextTable(["a"])
        table.add_row([1])
        assert str(table) == table.render()


class TestHelpers:
    def test_format_percent(self):
        assert format_percent(0.0531) == "5.3%"
        assert format_percent(0.5, digits=0) == "50%"

    def test_banner(self):
        text = banner("Results")
        lines = text.splitlines()
        assert lines[1] == "Results"
        assert set(lines[0]) == {"="}
