"""Tests for the coverage metric and miss classification."""

import pytest

from repro.analysis.coverage import (
    CoverageMeter,
    MissClass,
    MissClassifier,
)
from repro.cache.cache import AccessKind
from repro.cache.hierarchy import AccessOutcome


def outcome(supplier, tiers=4):
    hits = [False] * tiers
    if supplier is not None:
        hits[supplier - 1] = True
    return AccessOutcome(address=0, kind=AccessKind.LOAD, hits=tuple(hits),
                         supplier=supplier)


class TestCoverageMeter:
    def test_paper_example_half_coverage(self):
        """The paper's example: data in level 4, miss identified at level 2
        but not level 3 -> 50% coverage."""
        meter = CoverageMeter(4)
        meter.record(outcome(4), bits=(False, True, False, False))
        assert meter.candidates == 2
        assert meter.identified == 1
        assert meter.coverage == pytest.approx(0.5)

    def test_l1_misses_not_candidates(self):
        meter = CoverageMeter(4)
        meter.record(outcome(2), bits=(False, False, False, False))
        assert meter.candidates == 0
        assert meter.coverage == 0.0

    def test_memory_supply_counts_all_tracked_tiers(self):
        meter = CoverageMeter(4)
        meter.record(outcome(None), bits=(False, True, True, True))
        assert meter.candidates == 3
        assert meter.identified == 3
        assert meter.coverage == 1.0

    def test_violation_detection(self):
        meter = CoverageMeter(4)
        meter.record(outcome(3), bits=(False, False, True, False))
        assert meter.violations == 1

    def test_tier_breakdown(self):
        meter = CoverageMeter(4)
        meter.record(outcome(None), bits=(False, True, False, True))
        assert meter.tier_coverage(2) == 1.0
        assert meter.tier_coverage(3) == 0.0
        assert meter.tier_candidates(4) == 1

    def test_merge(self):
        a = CoverageMeter(4)
        b = CoverageMeter(4)
        a.record(outcome(4), bits=(False, True, False, False))
        b.record(outcome(4), bits=(False, True, True, False))
        a.merge(b)
        assert a.candidates == 4
        assert a.identified == 3

    def test_merge_rejects_mismatched(self):
        with pytest.raises(ValueError):
            CoverageMeter(4).merge(CoverageMeter(3))

    def test_reset(self):
        meter = CoverageMeter(4)
        meter.record(outcome(None), bits=(False, True, True, True))
        meter.reset()
        assert meter.candidates == 0
        assert meter.accesses == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            CoverageMeter(0)


class TestMissClassifier:
    def test_first_touch_is_cold(self):
        classifier = MissClassifier(capacity_blocks=4)
        assert classifier.observe(1, was_hit=False) is MissClass.COLD

    def test_hit_returns_none(self):
        classifier = MissClassifier(4)
        classifier.observe(1, was_hit=False)
        assert classifier.observe(1, was_hit=True) is None

    def test_conflict_when_fully_associative_would_hit(self):
        classifier = MissClassifier(capacity_blocks=4)
        classifier.observe(1, was_hit=False)   # cold
        classifier.observe(2, was_hit=False)   # cold
        # block 1 still within FA capacity; a real-cache miss is a conflict
        assert classifier.observe(1, was_hit=False) is MissClass.CONFLICT

    def test_capacity_when_reuse_distance_exceeds_cache(self):
        classifier = MissClassifier(capacity_blocks=2)
        for block in (1, 2, 3):               # 1 falls out of FA LRU
            classifier.observe(block, was_hit=False)
        assert classifier.observe(1, was_hit=False) is MissClass.CAPACITY

    def test_breakdown_totals(self):
        classifier = MissClassifier(2)
        classifier.observe(1, False)
        classifier.observe(2, False)
        classifier.observe(1, False)   # conflict
        classifier.observe(3, False)   # cold; evicts 2
        classifier.observe(2, False)   # capacity
        breakdown = classifier.breakdown
        assert breakdown.cold == 3
        assert breakdown.conflict == 1
        assert breakdown.capacity == 1
        assert breakdown.total == 5
        assert breakdown.fraction(MissClass.COLD) == pytest.approx(0.6)

    def test_rmnm_ceiling_interpretation(self):
        """RMNM can only catch non-cold misses: the classifier provides the
        ceiling 1 - cold_fraction used in the ablation experiment."""
        classifier = MissClassifier(2)
        for block in (1, 2, 1, 2):
            classifier.observe(block, was_hit=False)
        assert classifier.breakdown.fraction(MissClass.COLD) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            MissClassifier(0)
