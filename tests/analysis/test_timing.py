"""Tests for the per-access timing model."""

import pytest

from repro.cache.cache import AccessKind
from repro.cache.hierarchy import AccessOutcome
from repro.core.base import Placement
from repro.analysis.timing import AccessTimingModel
from tests.conftest import small_hierarchy_config

# test hierarchy latencies: L1=1, ul2=4, ul3=8; memory=100
CONFIG = small_hierarchy_config(3)


def outcome(supplier, kind=AccessKind.LOAD):
    hits = [False, False, False]
    if supplier is not None:
        hits[supplier - 1] = True
    return AccessOutcome(address=0, kind=kind, hits=tuple(hits),
                         supplier=supplier)


class TestBaselineLatency:
    def setup_method(self):
        self.model = AccessTimingModel(CONFIG)

    def test_l1_hit(self):
        assert self.model.latency(outcome(1)) == 1

    def test_l2_hit_includes_l1_miss_detection(self):
        assert self.model.latency(outcome(2)) == 1 + 4

    def test_l3_hit(self):
        assert self.model.latency(outcome(3)) == 1 + 4 + 8

    def test_memory_supply(self):
        assert self.model.latency(outcome(None)) == 1 + 4 + 8 + 100

    def test_miss_time_component(self):
        assert self.model.miss_time(outcome(1)) == 0
        assert self.model.miss_time(outcome(3)) == 1 + 4
        assert self.model.miss_time(outcome(None)) == 1 + 4 + 8

    def test_instruction_side(self):
        assert self.model.latency(outcome(1, AccessKind.INSTRUCTION)) == 1


class TestBypassedLatency:
    def setup_method(self):
        self.model = AccessTimingModel(CONFIG, placement=Placement.PARALLEL,
                                       mnm_delay=2)

    def test_bypassing_l2_saves_its_miss_time(self):
        base = self.model.latency(outcome(3))
        bypassed = self.model.latency(outcome(3), bits=(False, True, False))
        assert base - bypassed == 4

    def test_full_bypass_to_memory(self):
        bits = (False, True, True)
        assert self.model.latency(outcome(None), bits) == 1 + 100

    def test_parallel_mnm_adds_no_delay(self):
        assert self.model.latency(outcome(1), (False, False, False)) == 1

    def test_bypassed_time_helper(self):
        assert self.model.bypassed_time(outcome(None), (False, True, True)) == 12

    def test_level1_bit_never_set_by_convention(self):
        # even if set, the model skips only tiers that missed
        assert self.model.latency(outcome(1), (True, False, False)) == 1


class TestSerialMNM:
    def test_serial_adds_delay_past_l1(self):
        model = AccessTimingModel(CONFIG, placement=Placement.SERIAL,
                                  mnm_delay=2)
        assert model.latency(outcome(1), (False, False, False)) == 1
        assert model.latency(outcome(2), (False, False, False)) == 1 + 2 + 4

    def test_serial_delay_applies_once(self):
        model = AccessTimingModel(CONFIG, placement=Placement.SERIAL,
                                  mnm_delay=2)
        assert model.latency(outcome(None), (False, False, False)) == (
            1 + 4 + 8 + 100 + 2
        )

    def test_perfect_mnm_is_free(self):
        model = AccessTimingModel(CONFIG, placement=Placement.SERIAL,
                                  mnm_delay=2, mnm_free=True)
        assert model.latency(outcome(2), (False, False, False)) == 1 + 4

    def test_no_bits_means_no_mnm_delay(self):
        model = AccessTimingModel(CONFIG, placement=Placement.SERIAL,
                                  mnm_delay=2)
        assert model.latency(outcome(2)) == 1 + 4
