"""Tests for the ASCII bar-chart renderer and result serialization."""

import pytest

from repro.analysis.report import bar_chart
from repro.experiments.base import ExperimentResult


class TestBarChart:
    def test_basic_render(self):
        chart = bar_chart("title", ["gcc", "mcf"], [27.8, 5.5])
        lines = chart.splitlines()
        assert lines[0] == "title"
        assert lines[1].startswith("gcc")
        assert "27.8" in lines[1]
        assert "5.5" in lines[2]

    def test_bars_proportional(self):
        chart = bar_chart("t", ["a", "b"], [10.0, 5.0], width=20)
        a_line, b_line = chart.splitlines()[1:]
        assert a_line.count("█") == 20
        assert b_line.count("█") == 10

    def test_zero_values_render_empty_bars(self):
        chart = bar_chart("t", ["a"], [0.0])
        assert "█" not in chart

    def test_negative_values_sized_by_magnitude(self):
        chart = bar_chart("t", ["a", "b"], [-10.0, 5.0], width=10)
        a_line = chart.splitlines()[1]
        assert a_line.count("█") == 10
        assert "-10.0" in a_line

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart("t", ["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart("t", ["a"], [1.0], width=0)


class TestResultSerialisation:
    def result(self):
        return ExperimentResult(
            experiment_id="figX",
            title="demo",
            headers=["app", "value"],
            rows=[["gcc", 1.5], ["mcf", 0.5]],
            notes="note",
            paper_reference="ref",
        )

    def test_to_dict_round_trips_through_json(self):
        import json

        payload = json.loads(json.dumps(self.result().to_dict()))
        assert payload["experiment_id"] == "figX"
        assert payload["rows"] == [["gcc", 1.5], ["mcf", 0.5]]
        assert payload["notes"] == "note"

    def test_render_chart_defaults_to_last_column(self):
        chart = self.result().render_chart()
        assert "value" in chart
        assert "gcc" in chart

    def test_render_chart_named_column(self):
        chart = self.result().render_chart(column="value", width=10)
        gcc_line = [l for l in chart.splitlines() if l.startswith("gcc")][0]
        assert gcc_line.count("█") == 10

    def test_render_chart_unknown_column(self):
        with pytest.raises(ValueError):
            self.result().render_chart(column="nope")
