"""Tests for the multi-seed aggregation utilities."""

import pytest

from repro.analysis.stats import CellStats, MultiSeedResult, run_multi_seed
from repro.experiments.base import ExperimentResult, ExperimentSettings

TINY = ExperimentSettings(num_instructions=4000, warmup_fraction=0.25,
                          workloads=("twolf",))


def fake_runner(settings):
    """Deterministic fake experiment whose cells depend on the seed."""
    value = 10.0 + settings.seed
    return ExperimentResult(
        experiment_id="figX",
        title="fake",
        headers=["app", "metric", "label"],
        rows=[["twolf", value, "x"], ["Arith. Mean", value, None]],
    )


class TestRunMultiSeed:
    def test_aggregates_mean_and_std(self):
        aggregated = run_multi_seed(fake_runner, TINY, seeds=[0, 2, 4])
        cell = aggregated.cell("twolf", "metric")
        assert cell.mean == pytest.approx(12.0)
        assert cell.std == pytest.approx((8 / 3) ** 0.5)
        assert cell.samples == 3

    def test_non_numeric_columns_become_none(self):
        aggregated = run_multi_seed(fake_runner, TINY, seeds=[0, 1])
        with pytest.raises(ValueError):
            aggregated.cell("twolf", "label")

    def test_max_relative_std(self):
        aggregated = run_multi_seed(fake_runner, TINY, seeds=[0, 2])
        assert aggregated.max_relative_std() == pytest.approx(1.0 / 11.0)

    def test_needs_seeds(self):
        with pytest.raises(ValueError):
            run_multi_seed(fake_runner, TINY, seeds=[])

    def test_mismatched_rows_rejected(self):
        def unstable_runner(settings):
            return ExperimentResult(
                experiment_id="figX", title="t",
                headers=["app", "v"],
                rows=[[f"w{settings.seed}", 1.0]],
            )

        with pytest.raises(ValueError, match="labels differ"):
            run_multi_seed(unstable_runner, TINY, seeds=[0, 1])

    def test_real_experiment_aggregation(self):
        from repro.experiments.figures import run_figure13

        aggregated = run_multi_seed(run_figure13, TINY, seeds=[0, 1])
        cell = aggregated.cell("Arith. Mean", "CMNM_8_12")
        assert 0.0 <= cell.mean <= 100.0
        assert cell.samples == 2


class TestCellStats:
    def test_relative_std(self):
        assert CellStats(10.0, 1.0, 3).relative_std == pytest.approx(0.1)
        assert CellStats(0.0, 1.0, 3).relative_std == 0.0
