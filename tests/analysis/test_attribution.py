"""Tests for hybrid-miss attribution."""

import random

import pytest

from repro.analysis.attribution import (
    AttributionMeter,
    AttributionTotals,
    attribute_hybrid,
)
from repro.cache.cache import AccessKind
from repro.cache.hierarchy import CacheHierarchy
from repro.core.machine import MostlyNoMachine
from repro.core.presets import hmnm_design, perfect_design, tmnm_design
from tests.conftest import random_references, small_hierarchy_config


class TestAttributionTotals:
    def test_single_witness_is_exclusive(self):
        totals = AttributionTotals()
        totals.credit(["tmnm"])
        assert totals.identified == 1
        assert totals.share("tmnm") == 1.0
        assert totals.exclusive_share("tmnm") == 1.0
        assert totals.shared == 0

    def test_multi_witness_is_shared(self):
        totals = AttributionTotals()
        totals.credit(["tmnm", "cmnm"])
        assert totals.identified == 1
        assert totals.share("tmnm") == 1.0
        assert totals.share("cmnm") == 1.0
        assert totals.exclusive_share("tmnm") == 0.0
        assert totals.shared == 1

    def test_empty(self):
        totals = AttributionTotals()
        assert totals.share("tmnm") == 0.0
        assert totals.exclusive_share("tmnm") == 0.0


class TestAttributionMeter:
    def _run(self, design, count=2500):
        rng = random.Random(11)
        hierarchy = CacheHierarchy(small_hierarchy_config(3))
        machine = MostlyNoMachine(hierarchy, design)
        meter = AttributionMeter(machine)
        for address, kind in random_references(rng, count, span=1 << 14):
            meter.observe(address, kind)
        return meter.totals

    def test_hybrid_attribution_sums(self):
        totals = self._run(hmnm_design(2))
        assert totals.identified > 0
        witnessed = sum(totals.exclusive_by_technique.values()) + totals.shared
        assert witnessed == totals.identified
        assert set(totals.by_technique) <= {"rmnm", "smnm", "tmnm", "cmnm"}

    def test_single_technique_machine(self):
        totals = self._run(tmnm_design(8, 2))
        assert totals.identified > 0
        assert set(totals.by_technique) == {"tmnm"}
        assert totals.exclusive_share("tmnm") == 1.0

    def test_perfect_machine(self):
        totals = self._run(perfect_design())
        assert totals.identified > 0
        assert set(totals.by_technique) == {"perfect"}


class TestAttributeHybrid:
    def test_runner_with_warmup(self):
        rng = random.Random(5)
        hierarchy = CacheHierarchy(small_hierarchy_config(3))
        machine = MostlyNoMachine(hierarchy, hmnm_design(1))
        references = random_references(rng, 2000, span=1 << 14)
        totals = attribute_hybrid(hierarchy, machine, references, warmup=500)
        assert totals.identified >= 0
        assert isinstance(totals.by_technique, dict)

    def test_mismatched_hierarchy_rejected(self):
        hierarchy = CacheHierarchy(small_hierarchy_config(3))
        other = CacheHierarchy(small_hierarchy_config(3))
        machine = MostlyNoMachine(other, hmnm_design(1))
        with pytest.raises(ValueError):
            attribute_hybrid(hierarchy, machine, [])
