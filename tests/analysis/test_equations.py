"""Tests for Equations 1 and 2 and their consistency with the simulator."""

import pytest

from repro.analysis.equations import (
    LevelRates,
    average_access_time,
    average_access_time_with_mnm,
    measured_level_rates,
    miss_time_fraction,
)
from repro.analysis.timing import AccessTimingModel
from repro.cache.cache import AccessKind
from repro.cache.hierarchy import CacheHierarchy
from tests.conftest import random_references, small_hierarchy_config
import random


class TestEquation1:
    def test_single_level_always_hits(self):
        levels = [LevelRates(2.0, 2.0, 0.0)]
        assert average_access_time(levels) == 2.0

    def test_two_levels_weighted(self):
        # L1: hit 2, miss-detect 2, miss rate 0.1; memory 100
        levels = [LevelRates(2.0, 2.0, 0.1), LevelRates(100.0, 0.0, 0.0)]
        expected = (2.0 * 0.9 + 2.0 * 0.1) + 0.1 * 100.0
        assert average_access_time(levels) == pytest.approx(expected)

    def test_three_levels_reach_product(self):
        levels = [
            LevelRates(1.0, 1.0, 0.5),
            LevelRates(4.0, 4.0, 0.2),
            LevelRates(50.0, 0.0, 0.0),
        ]
        expected = 1.0 + 0.5 * 4.0 + 0.5 * 0.2 * 50.0
        assert average_access_time(levels) == pytest.approx(expected)

    def test_last_level_must_be_backing_store(self):
        with pytest.raises(ValueError):
            average_access_time([LevelRates(2.0, 2.0, 0.1)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_access_time([])

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            LevelRates(2.0, 2.0, 1.5)
        with pytest.raises(ValueError):
            LevelRates(-1.0, 2.0, 0.5)


class TestEquation2:
    LEVELS = [
        LevelRates(1.0, 1.0, 0.5),
        LevelRates(4.0, 4.0, 0.2),
        LevelRates(50.0, 0.0, 0.0),
    ]

    def test_no_aborts_equals_equation1(self):
        assert average_access_time_with_mnm(
            self.LEVELS, [0.0, 0.0, 0.0]
        ) == pytest.approx(average_access_time(self.LEVELS))

    def test_full_aborts_remove_miss_time(self):
        with_mnm = average_access_time_with_mnm(self.LEVELS, [0.0, 1.0, 0.0])
        without = average_access_time(self.LEVELS)
        # level-2 miss time removed: reach(0.5) * miss_rate(0.2) * 4
        assert without - with_mnm == pytest.approx(0.5 * 0.2 * 4.0)

    def test_serial_delay_charged_on_l1_misses(self):
        base = average_access_time_with_mnm(self.LEVELS, [0, 0, 0])
        serial = average_access_time_with_mnm(self.LEVELS, [0, 0, 0],
                                              serial_delay=2.0)
        assert serial - base == pytest.approx(0.5 * 2.0)

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            average_access_time_with_mnm(self.LEVELS, [0.0, 2.0, 0.0])
        with pytest.raises(ValueError):
            average_access_time_with_mnm(self.LEVELS, [0.0])


class TestMissTimeFraction:
    def test_no_misses_no_fraction(self):
        levels = [LevelRates(2.0, 2.0, 0.0), LevelRates(100.0, 0.0, 0.0)]
        assert miss_time_fraction(levels) == 0.0

    def test_fraction_bounded(self):
        levels = [
            LevelRates(1.0, 1.0, 0.5),
            LevelRates(4.0, 4.0, 0.5),
            LevelRates(50.0, 0.0, 0.0),
        ]
        assert 0.0 < miss_time_fraction(levels) < 1.0


class TestConsistencyWithSimulator:
    def test_equation1_matches_per_access_pricing(self):
        """Pricing a simulated stream per access must equal Equation 1 on
        the measured per-level rates (same model, two routes)."""
        hierarchy = CacheHierarchy(small_hierarchy_config(3))
        timing = AccessTimingModel(hierarchy.config)
        rng = random.Random(5)
        # data-only stream so one cache per level is exercised
        total_time = 0
        count = 0
        for address, _ in random_references(rng, 4000, span=1 << 14):
            outcome = hierarchy.access(address, AccessKind.LOAD)
            total_time += timing.latency(outcome)
            count += 1
        measured_average = total_time / count

        caches = [hierarchy.cache_for(t, AccessKind.LOAD)
                  for t in range(1, 4)]
        levels = measured_level_rates(
            hit_counts=[c.stats.hits for c in caches],
            probe_counts=[c.stats.probes for c in caches],
            hit_times=[c.config.hit_latency for c in caches],
            miss_times=[c.config.effective_miss_latency for c in caches],
            memory_latency=hierarchy.config.memory_latency,
        )
        assert average_access_time(levels) == pytest.approx(
            measured_average, rel=1e-9)

    def test_measured_level_rates_validation(self):
        with pytest.raises(ValueError):
            measured_level_rates([1], [1, 2], [1], [1], 100)

    def test_unprobed_levels_get_zero_miss_rate(self):
        levels = measured_level_rates([10, 0], [10, 0], [1, 2], [1, 2], 100)
        assert levels[1].miss_rate == 0.0
