"""Tests for design-space sweep utilities."""

import pytest

from repro.analysis.sweep import (
    SweepPoint,
    dominated,
    pareto_frontier,
    sweep_designs,
)
from repro.core.presets import cmnm_design, tmnm_design
from repro.workloads import get_trace
from tests.conftest import small_hierarchy_config


def point(name, bits, coverage):
    return SweepPoint(design_name=name, storage_bits=bits,
                      coverage=coverage, violations=0)


class TestParetoFrontier:
    def test_strictly_improving_chain_all_kept(self):
        points = [point("a", 100, 0.1), point("b", 200, 0.3),
                  point("c", 400, 0.6)]
        assert pareto_frontier(points) == points

    def test_dominated_points_dropped(self):
        points = [point("a", 100, 0.5), point("b", 200, 0.3),
                  point("c", 400, 0.6)]
        frontier = pareto_frontier(points)
        assert [p.design_name for p in frontier] == ["a", "c"]

    def test_equal_size_keeps_best(self):
        points = [point("a", 100, 0.5), point("b", 100, 0.7)]
        frontier = pareto_frontier(points)
        assert [p.design_name for p in frontier] == ["b"]

    def test_coverage_increases_along_frontier(self):
        points = [point(str(i), bits, cov) for i, (bits, cov) in enumerate(
            [(50, 0.2), (75, 0.1), (100, 0.5), (300, 0.4), (500, 0.9)])]
        frontier = pareto_frontier(points)
        coverages = [p.coverage for p in frontier]
        assert coverages == sorted(coverages)

    def test_empty(self):
        assert pareto_frontier([]) == []

    def test_tie_break_is_deterministic_by_name(self):
        # Two designs with identical (storage, coverage): the frontier
        # must keep the lexicographically-first name no matter the input
        # order.
        tied = [point("zeta", 100, 0.5), point("alpha", 100, 0.5)]
        for ordering in (tied, list(reversed(tied))):
            frontier = pareto_frontier(ordering)
            assert [p.design_name for p in frontier] == ["alpha"]

    def test_input_order_never_changes_frontier(self):
        import itertools

        points = [point("a", 100, 0.5), point("b", 100, 0.5),
                  point("c", 200, 0.5), point("d", 200, 0.7)]
        expected = pareto_frontier(points)
        for permutation in itertools.permutations(points):
            assert pareto_frontier(list(permutation)) == expected


class TestCoveragePerKb:
    def test_zero_storage_positive_coverage_is_inf(self):
        # The PERFECT oracle: free coverage must rank as infinitely
        # efficient, not as 0.0 (which used to sort it dead last).
        oracle = point("PERFECT", 0, 1.0)
        assert oracle.coverage_per_kb == float("inf")

    def test_zero_storage_zero_coverage_is_zero(self):
        null = point("NULL", 0, 0.0)
        assert null.coverage_per_kb == 0.0

    def test_positive_storage_unchanged(self):
        p = point("a", 8 * 1024, 0.5)  # exactly 1 KB
        assert p.coverage_per_kb == pytest.approx(0.5)


class TestDominated:
    def test_smaller_and_better_dominates(self):
        a = point("a", 100, 0.5)
        b = point("b", 200, 0.3)
        assert dominated(b, [a])
        assert not dominated(a, [b])

    def test_self_never_dominates(self):
        a = point("a", 100, 0.5)
        assert not dominated(a, [a])

    def test_incomparable(self):
        a = point("a", 100, 0.3)
        b = point("b", 200, 0.5)
        assert not dominated(a, [b])
        assert not dominated(b, [a])


class TestSweepDesigns:
    def test_sweep_on_real_pass(self):
        trace = get_trace("twolf", 4000, seed=0)
        references = list(trace.memory_references(16))
        designs = [tmnm_design(6, 1), tmnm_design(10, 2), cmnm_design(2, 8)]
        points = sweep_designs(references, small_hierarchy_config(3),
                               designs, warmup=len(references) // 4)
        assert len(points) == 3
        by_name = {p.design_name: p for p in points}
        assert by_name["TMNM_10x2"].storage_bits > by_name["TMNM_6x1"].storage_bits
        for p in points:
            assert 0.0 <= p.coverage <= 1.0
            assert p.violations == 0
            assert p.storage_kb > 0
            assert p.coverage_per_kb >= 0.0
