"""Property-based tests for the timing model across placements."""

from hypothesis import given, settings, strategies as st

from repro.analysis.timing import AccessTimingModel
from repro.cache.cache import AccessKind
from repro.cache.hierarchy import AccessOutcome
from repro.core.base import Placement
from tests.conftest import small_hierarchy_config

CONFIG = small_hierarchy_config(4)


@st.composite
def outcomes_and_bits(draw):
    """A consistent (outcome, bits) pair for the 4-tier test hierarchy."""
    supplier = draw(st.sampled_from([1, 2, 3, 4, None]))
    hits = [False] * 4
    if supplier is not None:
        hits[supplier - 1] = True
    outcome = AccessOutcome(
        address=draw(st.integers(min_value=0, max_value=0xFFFF)),
        kind=draw(st.sampled_from([AccessKind.LOAD, AccessKind.STORE,
                                   AccessKind.INSTRUCTION])),
        hits=tuple(hits),
        supplier=supplier,
    )
    missed = outcome.tiers_missed
    bits = [False] * 4
    for tier in range(2, missed + 1):
        bits[tier - 1] = draw(st.booleans())
    return outcome, tuple(bits)


class TestTimingProperties:
    @settings(max_examples=200, deadline=None)
    @given(outcomes_and_bits())
    def test_parallel_bypass_never_slower(self, pair):
        outcome, bits = pair
        model = AccessTimingModel(CONFIG, placement=Placement.PARALLEL,
                                  mnm_delay=2)
        assert model.latency(outcome, bits) <= model.latency(outcome)

    @settings(max_examples=200, deadline=None)
    @given(outcomes_and_bits())
    def test_placement_delay_ordering(self, pair):
        """For identical bits: parallel <= serial <= distributed."""
        outcome, bits = pair
        latencies = {}
        for placement in (Placement.PARALLEL, Placement.SERIAL,
                          Placement.DISTRIBUTED):
            model = AccessTimingModel(CONFIG, placement=placement,
                                      mnm_delay=2)
            latencies[placement] = model.latency(outcome, bits)
        assert (latencies[Placement.PARALLEL]
                <= latencies[Placement.SERIAL]
                <= latencies[Placement.DISTRIBUTED])

    @settings(max_examples=200, deadline=None)
    @given(outcomes_and_bits())
    def test_more_bits_never_slower_parallel(self, pair):
        """Setting an extra (true-miss) bit can only reduce latency."""
        outcome, bits = pair
        model = AccessTimingModel(CONFIG, placement=Placement.PARALLEL,
                                  mnm_delay=2)
        base = model.latency(outcome, bits)
        for tier in range(2, outcome.tiers_missed + 1):
            if not bits[tier - 1]:
                richer = list(bits)
                richer[tier - 1] = True
                assert model.latency(outcome, tuple(richer)) <= base

    @settings(max_examples=200, deadline=None)
    @given(outcomes_and_bits())
    def test_latency_decomposition(self, pair):
        """latency == latency_with_bits + bypassed_time (parallel)."""
        outcome, bits = pair
        model = AccessTimingModel(CONFIG, placement=Placement.PARALLEL,
                                  mnm_delay=2)
        assert (model.latency(outcome)
                == model.latency(outcome, bits)
                + model.bypassed_time(outcome, bits))

    @settings(max_examples=200, deadline=None)
    @given(outcomes_and_bits())
    def test_miss_time_bounds_savings(self, pair):
        """No design can save more than the total miss-detection time."""
        outcome, bits = pair
        model = AccessTimingModel(CONFIG)
        assert model.bypassed_time(outcome, bits) <= model.miss_time(outcome)

    @settings(max_examples=100, deadline=None)
    @given(outcomes_and_bits())
    def test_latency_positive(self, pair):
        outcome, bits = pair
        for placement in Placement:
            model = AccessTimingModel(CONFIG, placement=placement,
                                      mnm_delay=2)
            assert model.latency(outcome, bits) >= 1
