"""Tests for the high-level simulation façade."""

import pytest

from repro.cache.cache import AccessKind
from repro.core.base import Placement
from repro.core.presets import (
    hmnm_design,
    null_design,
    parse_design,
    perfect_design,
    tmnm_design,
)
from repro.cpu.core import paper_core
from repro.simulate import (
    build_memory,
    run_core_trace,
    run_reference_pass,
)
from repro.workloads import get_trace
from tests.conftest import small_hierarchy_config

CONFIG = small_hierarchy_config(3)


class TestBuildMemory:
    def test_baseline_has_no_mnm(self):
        memory = build_memory(CONFIG, None)
        assert memory.mnm is None
        assert memory.coverage is None
        assert memory.accountant is not None

    def test_null_design_is_baseline(self):
        memory = build_memory(CONFIG, null_design())
        assert memory.mnm is None

    def test_active_design_builds_machine(self):
        memory = build_memory(CONFIG, tmnm_design(8, 1))
        assert memory.mnm is not None
        assert memory.coverage is not None

    def test_access_returns_latency(self):
        memory = build_memory(CONFIG, None)
        cold = memory.access(0x4000, AccessKind.LOAD)
        warm = memory.access(0x4000, AccessKind.LOAD)
        assert cold == 1 + 4 + 8 + 100
        assert warm == 1

    def test_fetch_properties(self):
        memory = build_memory(CONFIG, None)
        assert memory.fetch_block_size == 16
        assert memory.l1_instruction_latency == 1

    def test_reset_meters_keeps_state(self):
        memory = build_memory(CONFIG, tmnm_design(8, 1))
        memory.access(0x4000, AccessKind.LOAD)
        memory.reset_meters()
        assert memory.accountant.totals.accesses == 0
        assert memory.access(0x4000, AccessKind.LOAD) == 1  # still warm


class TestRunCoreTrace:
    @pytest.fixture(scope="class")
    def trace(self):
        return get_trace("twolf", 4000, seed=0)

    def test_baseline_run(self, trace):
        run = run_core_trace(trace, CONFIG, None, core_config=paper_core(4))
        assert run.design_name == "NONE"
        assert run.cycles > 0
        assert run.coverage is None
        assert 0.0 < run.hit_rate("dl1") <= 1.0

    def test_mnm_run_reports_coverage(self, trace):
        run = run_core_trace(trace, CONFIG, hmnm_design(1),
                             core_config=paper_core(4))
        assert run.design_name == "HMNM1"
        assert run.coverage is not None
        assert run.coverage.violations == 0

    def test_perfect_never_slower(self, trace):
        base = run_core_trace(trace, CONFIG, None, core_config=paper_core(4))
        perfect = run_core_trace(trace, CONFIG, perfect_design(),
                                 core_config=paper_core(4))
        assert perfect.cycles <= base.cycles

    def test_real_design_bounded_by_perfect(self, trace):
        base = run_core_trace(trace, CONFIG, None, core_config=paper_core(4))
        perfect = run_core_trace(trace, CONFIG, perfect_design(),
                                 core_config=paper_core(4))
        real = run_core_trace(trace, CONFIG, hmnm_design(4),
                              core_config=paper_core(4))
        assert perfect.cycles <= real.cycles <= base.cycles

    def test_warmup_shrinks_counts(self, trace):
        full = run_core_trace(trace, CONFIG, None, core_config=paper_core(4))
        tail = run_core_trace(trace, CONFIG, None, core_config=paper_core(4),
                              warmup=len(trace) // 2)
        assert tail.core.instructions < full.core.instructions
        assert tail.cycles < full.cycles

    def test_deterministic(self, trace):
        a = run_core_trace(trace, CONFIG, hmnm_design(2),
                           core_config=paper_core(4))
        b = run_core_trace(trace, CONFIG, hmnm_design(2),
                           core_config=paper_core(4))
        assert a.cycles == b.cycles
        assert a.energy.total_nj == b.energy.total_nj


class TestRunReferencePass:
    @pytest.fixture(scope="class")
    def refs(self):
        trace = get_trace("twolf", 4000, seed=0)
        return list(trace.memory_references(16))

    def test_multi_design_pass(self, refs):
        designs = [tmnm_design(8, 1), perfect_design()]
        result = run_reference_pass(refs, CONFIG, designs, "twolf")
        assert result.references == len(refs)
        assert set(result.designs) == {"TMNM_8x1", "PERFECT"}
        perfect = result.designs["PERFECT"].coverage
        assert perfect.coverage == 1.0
        real = result.designs["TMNM_8x1"].coverage
        assert 0.0 <= real.coverage <= 1.0
        assert real.violations == 0

    def test_baseline_metrics(self, refs):
        result = run_reference_pass(refs, CONFIG, [], "twolf")
        assert result.baseline_access_time > 0
        assert 0.0 < result.miss_time_fraction < 1.0
        assert result.baseline_energy.total_nj > 0

    def test_reductions_ordered(self, refs):
        designs = [tmnm_design(8, 1), perfect_design()]
        result = run_reference_pass(refs, CONFIG, designs, "twolf")
        real = result.access_time_reduction("TMNM_8x1")
        perfect = result.access_time_reduction("PERFECT")
        assert 0.0 <= real <= perfect < 1.0

    def test_energy_reduction_perfect_positive(self, refs):
        result = run_reference_pass(
            refs, CONFIG,
            [perfect_design().with_placement(Placement.SERIAL)], "twolf")
        assert result.energy_reduction("PERFECT") > 0.0

    def test_warmup_excluded(self, refs):
        full = run_reference_pass(refs, CONFIG, [], "twolf")
        tail = run_reference_pass(refs, CONFIG, [], "twolf",
                                  warmup=len(refs) // 2)
        assert tail.references == len(refs) - len(refs) // 2
        assert tail.baseline_access_time < full.baseline_access_time

    def test_cache_stats_exposed(self, refs):
        result = run_reference_pass(refs, CONFIG, [], "twolf")
        assert "dl1" in result.cache_stats
        probes, hits = result.cache_stats["dl1"]
        assert probes >= hits >= 0

    def test_warmup_consuming_everything_raises(self, refs):
        """Regression: warmup >= stream length used to return division-
        by-zero garbage averages instead of failing loudly."""
        with pytest.raises(ValueError, match="warmup"):
            run_reference_pass(refs, CONFIG, [], "twolf", warmup=len(refs))
        with pytest.raises(ValueError, match="warmup"):
            run_reference_pass(refs, CONFIG, [], "twolf",
                               warmup=len(refs) + 10)

    def test_storage_bits_reported(self, refs):
        result = run_reference_pass(refs, CONFIG, [tmnm_design(8, 1)],
                                    "twolf")
        assert result.designs["TMNM_8x1"].storage_bits > 0

    def test_hot_loop_counter_equality(self, refs):
        """Pin the hot-loop accounting against the analytic totals.

        The per-reference loop had its allocations hoisted out; this pins
        that the restructuring kept exactly one query and one record per
        (reference, design) — the counters are derived per reference, so
        any skipped or doubled iteration shifts them.
        """
        from repro import telemetry

        designs = [tmnm_design(8, 1), perfect_design()]
        try:
            registry = telemetry.enable_metrics()
            result = run_reference_pass(refs, CONFIG, designs, "twolf")
            counters = registry.snapshot()["counters"]
        finally:
            telemetry.reset()
        assert counters["pass.references"] == len(refs)
        assert counters["mnm.queries"] == len(refs) * len(designs)
        for design_name, design_result in result.designs.items():
            meter = design_result.coverage
            assert meter.accesses == len(refs)
            for tier in range(2, meter.num_tiers + 1):
                assert (counters[f"mnm.{design_name}.bypass.l{tier}"]
                        <= counters[f"mnm.{design_name}.candidates.l{tier}"])
