"""Tests for address arithmetic and block-granularity mapping."""

import pytest
from hypothesis import given, strategies as st

from repro.addresses import (
    ADDRESS_SPACE,
    BlockMapper,
    align_up,
    block_address,
    block_base,
    is_power_of_two,
    log2_exact,
    validate_address,
)


class TestPowerOfTwo:
    def test_powers_are_recognised(self):
        for exponent in range(31):
            assert is_power_of_two(1 << exponent)

    def test_non_powers_are_rejected(self):
        for value in (0, -1, 3, 6, 12, 100, 1 << 20 | 1):
            assert not is_power_of_two(value)

    def test_log2_exact(self):
        assert log2_exact(1) == 0
        assert log2_exact(32) == 5
        assert log2_exact(1 << 20) == 20

    def test_log2_exact_rejects_non_powers(self):
        with pytest.raises(ValueError):
            log2_exact(48)
        with pytest.raises(ValueError):
            log2_exact(0)


class TestBlockAddress:
    def test_shifts_by_offset_bits(self):
        # Figure 4 of the paper: 128-byte blocks shift the address 7 bits
        assert block_address(0x1234_5680, 128) == 0x1234_5680 >> 7

    def test_same_block_same_address(self):
        assert block_address(0x1000, 32) == block_address(0x101F, 32)
        assert block_address(0x1000, 32) != block_address(0x1020, 32)

    def test_block_base_realigns(self):
        assert block_base(0x1234_5678, 64) == 0x1234_5640

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            block_address(ADDRESS_SPACE, 32)
        with pytest.raises(ValueError):
            validate_address(-1)

    def test_align_up(self):
        assert align_up(0, 8) == 0
        assert align_up(1, 8) == 8
        assert align_up(8, 8) == 8
        assert align_up(9, 8) == 16

    def test_align_up_rejects_bad_alignment(self):
        with pytest.raises(ValueError):
            align_up(5, 3)


class TestBlockMapper:
    def test_identity_when_sizes_equal(self):
        mapper = BlockMapper(granule=32, block_size=32)
        assert mapper.fanout == 1
        assert list(mapper.to_granules(7)) == [7]
        assert mapper.to_cache_block(7) == 7

    def test_fanout_for_larger_blocks(self):
        # the paper: a 128B-block cache generates 128/32 = 4 RMNM updates
        mapper = BlockMapper(granule=32, block_size=128)
        assert mapper.fanout == 4
        assert list(mapper.to_granules(3)) == [12, 13, 14, 15]

    def test_round_trip(self):
        mapper = BlockMapper(granule=32, block_size=128)
        for cache_block in range(20):
            for granule in mapper.to_granules(cache_block):
                assert mapper.to_cache_block(granule) == cache_block

    def test_byte_to_granule(self):
        mapper = BlockMapper(granule=32, block_size=64)
        assert mapper.byte_to_granule(0x40) == 2

    def test_rejects_block_smaller_than_granule(self):
        with pytest.raises(ValueError):
            BlockMapper(granule=64, block_size=32)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            BlockMapper(granule=24, block_size=48)

    @given(st.integers(min_value=0, max_value=ADDRESS_SPACE - 1),
           st.sampled_from([32, 64, 128, 256]))
    def test_granules_cover_block_exactly(self, address, block_size):
        mapper = BlockMapper(granule=32, block_size=block_size)
        cache_block = block_address(address, block_size)
        granules = list(mapper.to_granules(cache_block))
        assert len(granules) == block_size // 32
        # the byte address's own granule is among them
        assert block_address(address, 32) in granules
        # granules are contiguous
        assert granules == list(range(granules[0], granules[0] + len(granules)))
