"""Tests for the deterministic stream interleavers."""

import pytest

from repro.multicore.schedule import interleave


class TestRoundRobin:
    def test_cycles_in_core_order(self):
        order = list(interleave([2, 2, 2], "round_robin"))
        assert order == [0, 1, 2, 0, 1, 2]

    def test_drained_cores_are_skipped(self):
        order = list(interleave([3, 1], "round_robin"))
        assert order == [0, 1, 0, 0]

    def test_each_core_appears_exactly_count_times(self):
        counts = [5, 0, 3, 7]
        order = list(interleave(counts, "round_robin"))
        assert len(order) == sum(counts)
        for core, count in enumerate(counts):
            assert order.count(core) == count


class TestStochastic:
    def test_deterministic_per_seed(self):
        a = list(interleave([20, 20], "stochastic", seed=7))
        b = list(interleave([20, 20], "stochastic", seed=7))
        assert a == b

    def test_different_seeds_differ(self):
        a = list(interleave([50, 50], "stochastic", seed=1))
        b = list(interleave([50, 50], "stochastic", seed=2))
        assert a != b

    def test_conserves_counts(self):
        counts = [11, 0, 17]
        order = list(interleave(counts, "stochastic", seed=3))
        for core, count in enumerate(counts):
            assert order.count(core) == count


class TestValidation:
    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError, match="schedule"):
            list(interleave([1], "lifo"))

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            list(interleave([1, -1], "round_robin"))

    def test_empty_counts_yield_nothing(self):
        assert list(interleave([], "round_robin")) == []
        assert list(interleave([0, 0], "stochastic", seed=0)) == []
