"""Tests for run_multicore_pass and its executor/cache threading."""

import random

import pytest

from repro.core.presets import hmnm_design, perfect_design, tmnm_design
from repro.multicore.config import MulticoreConfig
from repro.simulate import run_multicore_pass
from tests.conftest import random_references, small_hierarchy_config

CONFIG = small_hierarchy_config(3)
DESIGNS = (tmnm_design(10, 1), hmnm_design(2), perfect_design())


def streams(cores, count=1200, seed=0):
    rng = random.Random(seed)
    return [random_references(rng, count, span=1 << 14)
            for _ in range(cores)]


def result_signature(result):
    """Everything observable, as a comparable value."""
    return (
        result.references,
        result.back_invalidations,
        result.coherence_invalidations,
        result.cache_stats,
        {
            name: (dr.coverage.accesses, dr.coverage.identified,
                   dr.coverage.candidates, dr.coverage.violations,
                   dr.storage_bits, dr.cross_core_invalidations)
            for name, dr in result.designs.items()
        },
    )


class TestDeterminism:
    def test_identical_inputs_identical_results(self):
        mc = MulticoreConfig(cores=2, schedule="stochastic", schedule_seed=5)
        a = run_multicore_pass(streams(2), CONFIG, DESIGNS, mc, warmup=200)
        b = run_multicore_pass(streams(2), CONFIG, DESIGNS, mc, warmup=200)
        assert result_signature(a) == result_signature(b)

    def test_fast_engine_falls_back_to_interp(self):
        """Pins the documented contract: the numpy kernel does not model
        contention, so engine='fast' must produce byte-identical results
        via the interpreter rather than failing or diverging."""
        mc = MulticoreConfig(cores=2)
        interp = run_multicore_pass(streams(2), CONFIG, DESIGNS, mc,
                                    warmup=200, engine="interp")
        fast = run_multicore_pass(streams(2), CONFIG, DESIGNS, mc,
                                  warmup=200, engine="fast")
        assert result_signature(interp) == result_signature(fast)

    def test_schedule_seed_changes_the_interleaving(self):
        base = MulticoreConfig(cores=2, schedule="stochastic",
                               schedule_seed=1)
        other = MulticoreConfig(cores=2, schedule="stochastic",
                                schedule_seed=2)
        a = run_multicore_pass(streams(2), CONFIG, DESIGNS, base)
        b = run_multicore_pass(streams(2), CONFIG, DESIGNS, other)
        assert result_signature(a) != result_signature(b)


class TestValidation:
    def test_stream_count_must_match_cores(self):
        with pytest.raises(ValueError, match="cores"):
            run_multicore_pass(streams(2), CONFIG, DESIGNS,
                               MulticoreConfig(cores=3))

    def test_mc_type_checked(self):
        with pytest.raises(TypeError, match="MulticoreConfig"):
            run_multicore_pass(streams(2), CONFIG, DESIGNS, mc="2-core")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            run_multicore_pass(streams(2), CONFIG, DESIGNS,
                               MulticoreConfig(cores=2), engine="verilog")

    def test_warmup_consuming_everything_raises(self):
        with pytest.raises(ValueError, match="warmup"):
            run_multicore_pass(streams(2, count=50), CONFIG, DESIGNS,
                               MulticoreConfig(cores=2), warmup=100)


class TestContentionSignal:
    def test_private_sharing_costs_coverage_not_soundness(self):
        """More cores fighting over the shared tiers must never flip a
        proof wrong; the private topology pays in coverage instead."""
        shared = run_multicore_pass(
            streams(4), CONFIG, DESIGNS,
            MulticoreConfig(cores=4, mnm_sharing="shared"), warmup=400)
        private = run_multicore_pass(
            streams(4), CONFIG, DESIGNS,
            MulticoreConfig(cores=4, mnm_sharing="private"), warmup=400)
        for result in (shared, private):
            for dr in result.designs.values():
                assert dr.coverage.violations == 0
        assert (private.designs["PERFECT"].coverage.coverage
                <= shared.designs["PERFECT"].coverage.coverage)
        assert private.designs["PERFECT"].cross_core_invalidations > 0
        assert shared.designs["PERFECT"].cross_core_invalidations == 0


class TestExecutorThreading:
    def test_serial_and_parallel_executors_agree(self, tmp_path):
        """A MulticoreTask computed by pool workers must hand back the
        exact pass a serial run computes (the serial==parallel contract)."""
        from repro.experiments.base import (
            ExperimentSettings,
            clear_pass_cache,
            multicore_pass,
        )
        from repro.experiments.executor import execute_tasks
        from repro.experiments.planning import MulticoreTask

        settings = ExperimentSettings(num_instructions=2000,
                                      warmup_fraction=0.25,
                                      workloads=("twolf",))
        mc = MulticoreConfig(cores=2, mnm_sharing="private")
        task = MulticoreTask(("twolf",), CONFIG, ("TMNM_10x1", "PERFECT"),
                             mc, settings, experiment_id="test")

        clear_pass_cache()
        serial = multicore_pass(("twolf",), CONFIG, task.designs(), mc,
                                settings)
        serial_sig = result_signature(serial)

        clear_pass_cache()
        computed = execute_tasks([task], jobs=2)
        assert computed == 1
        parallel = multicore_pass(("twolf",), CONFIG, task.designs(), mc,
                                  settings)
        assert result_signature(parallel) == serial_sig
        clear_pass_cache()

    def test_task_is_picklable_and_stable(self):
        import pickle

        from repro.experiments.base import ExperimentSettings
        from repro.experiments.planning import MulticoreTask

        settings = ExperimentSettings(num_instructions=2000,
                                      workloads=("twolf",))
        task = MulticoreTask(("twolf",), CONFIG, ("PERFECT",),
                             MulticoreConfig(cores=2), settings)
        clone = pickle.loads(pickle.dumps(task))
        assert clone.cache_key() == task.cache_key()
        assert clone.task_id() == task.task_id()
