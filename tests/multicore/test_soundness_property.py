"""Property test: no topology, policy, schedule or MNM family may ever
produce a false miss under interleaved streams and cross-core
invalidations — the paper's one-sided contract, extended to contention.

Hypothesis drives the core count, sharing topology, shared-L2 policy,
schedule (+ seed) and every core's reference stream; the designs cover
all four filter families, the Table-3 hybrid and the oracle.  Soundness
is asserted two ways for every measured access: directly (a shared-tier
hit contradicting a MISS bit fails on the spot) and through the
CoverageMeter's violation counter.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis.coverage import CoverageMeter
from repro.cache.cache import AccessKind
from repro.core.presets import (
    hmnm_design,
    parse_design,
    perfect_design,
    tmnm_design,
)
from repro.multicore.config import (
    L2_POLICIES,
    SCHEDULES,
    SHARINGS,
    MulticoreConfig,
)
from repro.multicore.hierarchy import MulticoreHierarchy
from repro.multicore.mnm import MulticoreMNM
from repro.multicore.schedule import interleave
from tests.conftest import small_hierarchy_config

DESIGNS = (
    tmnm_design(8, 1),
    parse_design("SMNM_10x1"),
    parse_design("CMNM_2_8"),
    parse_design("RMNM_128_1"),
    hmnm_design(2),
    perfect_design(),
)

references = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=(1 << 13) - 1).map(
            lambda a: a & ~0x3),
        st.sampled_from([AccessKind.LOAD, AccessKind.STORE,
                         AccessKind.INSTRUCTION]),
    ),
    min_size=20, max_size=120,
)


@settings(max_examples=30, deadline=None)
@given(
    streams=st.lists(references, min_size=1, max_size=3),
    sharing=st.sampled_from(SHARINGS),
    policy=st.sampled_from(L2_POLICIES),
    schedule=st.sampled_from(SCHEDULES),
    seed=st.integers(min_value=0, max_value=999),
)
def test_no_false_miss_under_contention(streams, sharing, policy, schedule,
                                        seed):
    mc = MulticoreConfig(cores=len(streams), mnm_sharing=sharing,
                         l2_policy=policy, schedule=schedule,
                         schedule_seed=seed)
    hierarchy = MulticoreHierarchy(small_hierarchy_config(3), mc)
    entries = [
        (design, MulticoreMNM(hierarchy, design, sharing),
         CoverageMeter(hierarchy.num_tiers))
        for design in DESIGNS
    ]

    positions = [0] * mc.cores
    for core in interleave([len(s) for s in streams], schedule, seed):
        address, kind = streams[core][positions[core]]
        positions[core] += 1
        bits_per_design = [
            (mnm, meter, mnm.query(core, address, kind))
            for _, mnm, meter in entries
        ]
        outcome = hierarchy.access(core, address, kind)
        supplier = outcome.supplier
        for mnm, meter, bits in bits_per_design:
            if supplier is not None and supplier >= 2:
                assert not bits[supplier - 1], (
                    f"{mnm.name} [{sharing}/{policy}] claimed a definite "
                    f"miss at shared tier {supplier} that supplied "
                    f"{address:#x} for core {core}"
                )
            meter.record(outcome, bits)

    for design, _, meter in entries:
        assert meter.violations == 0, (design.name, sharing, policy)
