"""Tests for MulticoreConfig validation and the MC point naming."""

import pytest

from repro.multicore.config import (
    L2_POLICIES,
    SCHEDULES,
    SHARINGS,
    MulticoreConfig,
    is_multicore_name,
    multicore_point_name,
    parse_multicore_name,
)


class TestValidation:
    def test_defaults_are_valid(self):
        mc = MulticoreConfig()
        assert mc.cores == 2
        assert mc.mnm_sharing in SHARINGS
        assert mc.l2_policy in L2_POLICIES
        assert mc.schedule in SCHEDULES

    def test_cores_must_be_positive(self):
        with pytest.raises(ValueError, match="cores"):
            MulticoreConfig(cores=0)

    def test_unknown_sharing_rejected(self):
        with pytest.raises(ValueError, match="sharing"):
            MulticoreConfig(mnm_sharing="split")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="l2_policy"):
            MulticoreConfig(l2_policy="victim")

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError, match="schedule"):
            MulticoreConfig(schedule="fifo")

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            MulticoreConfig(schedule_seed=-1)

    def test_inclusive_property(self):
        assert MulticoreConfig(l2_policy="inclusive").inclusive
        assert not MulticoreConfig(l2_policy="exclusive").inclusive


class TestFingerprint:
    def test_every_field_is_fingerprint_bearing(self):
        import dataclasses as dc

        base = MulticoreConfig(cores=2)
        variants = [
            dc.replace(base, cores=4),
            dc.replace(base, mnm_sharing="shared"),
            dc.replace(base, l2_policy="exclusive"),
            dc.replace(base, schedule="stochastic"),
            dc.replace(base, schedule="stochastic", schedule_seed=9),
        ]
        prints = {base.fingerprint()} | {v.fingerprint() for v in variants}
        assert len(prints) == len(variants) + 1


class TestNaming:
    def test_round_trip(self):
        for cores in (1, 2, 4, 16):
            for sharing in SHARINGS:
                for policy in L2_POLICIES:
                    config = MulticoreConfig(cores=cores, mnm_sharing=sharing,
                                             l2_policy=policy)
                    name = multicore_point_name(config, "TMNM_12x3")
                    parsed, base = parse_multicore_name(name)
                    assert parsed == config
                    assert base == "TMNM_12x3"

    def test_known_spelling(self):
        config = MulticoreConfig(cores=4, mnm_sharing="private",
                                 l2_policy="inclusive")
        assert multicore_point_name(config, "HMNM2") == "MC4ip_HMNM2"

    def test_is_multicore_name(self):
        assert is_multicore_name("MC4ip_HMNM2")
        assert is_multicore_name("MC1es_TMNM_12x3")
        assert not is_multicore_name("TMNM_12x3")
        assert not is_multicore_name("PERFECT")
        assert not is_multicore_name("MCxip_HMNM2")

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_multicore_name("TMNM_12x3")
