"""Tests for the multicore hierarchy: coherence, policies, counters."""

import random

import pytest

from repro.cache.cache import AccessKind
from repro.multicore.config import MulticoreConfig
from repro.multicore.hierarchy import MulticoreHierarchy
from tests.conftest import random_references, small_hierarchy_config


def make(cores=2, sharing="private", policy="inclusive", levels=3):
    mc = MulticoreConfig(cores=cores, mnm_sharing=sharing, l2_policy=policy)
    return MulticoreHierarchy(small_hierarchy_config(levels), mc)


class TestTopology:
    def test_private_l1s_shared_deeper_tiers(self):
        hierarchy = make(cores=4)
        for core in range(4):
            l1 = hierarchy.l1_for(core, AccessKind.LOAD)
            assert l1.config.name == f"c{core}_dl1"
        assert hierarchy.shared_cache_for(2, AccessKind.LOAD) is (
            hierarchy.shared_cache_for(2, AccessKind.INSTRUCTION))

    def test_single_tier_hierarchy_rejected(self):
        import dataclasses

        config = small_hierarchy_config(3)
        flat = dataclasses.replace(config, tiers=config.tiers[:1])
        with pytest.raises(ValueError, match="shared tier"):
            MulticoreHierarchy(flat, MulticoreConfig())

    def test_cores_do_not_share_l1_contents(self):
        hierarchy = make(cores=2)
        hierarchy.access(0, 0x1000, AccessKind.LOAD)
        assert hierarchy.l1_for(0, AccessKind.LOAD).contains(0x1000)
        assert not hierarchy.l1_for(1, AccessKind.LOAD).contains(0x1000)


class TestCoherence:
    def test_store_invalidates_peer_l1(self):
        hierarchy = make(cores=2)
        hierarchy.access(0, 0x2000, AccessKind.LOAD)
        assert hierarchy.l1_for(0, AccessKind.LOAD).contains(0x2000)
        hierarchy.access(1, 0x2000, AccessKind.STORE)
        assert not hierarchy.l1_for(0, AccessKind.LOAD).contains(0x2000)
        assert hierarchy.coherence_invalidations >= 1

    def test_load_does_not_invalidate_peers(self):
        hierarchy = make(cores=2)
        hierarchy.access(0, 0x2000, AccessKind.LOAD)
        hierarchy.access(1, 0x2000, AccessKind.LOAD)
        assert hierarchy.l1_for(0, AccessKind.LOAD).contains(0x2000)
        assert hierarchy.coherence_invalidations == 0


class TestPolicies:
    def test_inclusive_shared_eviction_reaches_every_l1(self):
        hierarchy = make(cores=2, policy="inclusive")
        hierarchy.access(0, 0x1000, AccessKind.LOAD)
        hierarchy.access(1, 0x1000, AccessKind.LOAD)
        ul2 = hierarchy.shared_cache_for(2, AccessKind.LOAD)
        blk = ul2.block_addr(0x1000)
        for k in range(1, ul2.config.associativity + 1):
            ul2.fill((blk + k * ul2.config.num_sets)
                     << ul2.config.offset_bits)
        assert not ul2.contains(0x1000)
        for core in range(2):
            assert not hierarchy.l1_for(core, AccessKind.LOAD).contains(
                0x1000)
        assert hierarchy.back_invalidations >= 2

    def test_exclusive_demand_fill_skips_l2(self):
        hierarchy = make(policy="exclusive")
        hierarchy.access(0, 0x3000, AccessKind.LOAD)
        assert hierarchy.l1_for(0, AccessKind.LOAD).contains(0x3000)
        assert not hierarchy.shared_cache_for(2, AccessKind.LOAD).contains(
            0x3000)

    def test_exclusive_hierarchy_has_no_back_invalidations(self):
        hierarchy = make(policy="exclusive")
        rng = random.Random(4)
        for address, kind in random_references(rng, 3000, span=1 << 14):
            hierarchy.access(rng.randrange(2), address, kind)
        assert hierarchy.back_invalidations == 0

    def test_back_invalidation_counts_sum_to_total(self):
        """Multicore mirror of the single-core counter-equality contract."""
        hierarchy = make(cores=2, policy="inclusive")
        rng = random.Random(6)
        for address, kind in random_references(rng, 4000, span=1 << 14):
            hierarchy.access(rng.randrange(2), address, kind)
        assert hierarchy.back_invalidations >= 1
        assert (sum(hierarchy.back_invalidation_counts.values())
                == hierarchy.back_invalidations)


class TestStats:
    def test_reset_stats_zeroes_every_counter(self):
        hierarchy = make(cores=2, policy="inclusive")
        rng = random.Random(9)
        for address, kind in random_references(rng, 3000, span=1 << 14):
            hierarchy.access(rng.randrange(2), address, kind)
        hierarchy.reset_stats()
        assert hierarchy.back_invalidations == 0
        assert hierarchy.back_invalidation_counts == {}
        assert hierarchy.coherence_invalidations == 0
        for _, cache in hierarchy.all_caches():
            assert cache.stats.probes == 0

    def test_export_stats_counter_equality(self):
        from repro.telemetry import MetricsRegistry

        hierarchy = make(cores=2, policy="inclusive")
        rng = random.Random(11)
        for address, kind in random_references(rng, 4000, span=1 << 14):
            hierarchy.access(rng.randrange(2), address, kind)
        registry = MetricsRegistry()
        hierarchy.export_stats(registry)
        counters = registry.snapshot()["counters"]
        for name, dropped in hierarchy.back_invalidation_counts.items():
            assert counters[f"cache.{name}.back_invalidations"] == dropped
        assert (counters["multicore.coherence_invalidations"]
                == hierarchy.coherence_invalidations)
