"""Tests for MulticoreMNM bank topologies and invalidation routing."""

import random

from repro.cache.cache import AccessKind
from repro.cache.hierarchy import CacheHierarchy
from repro.core.machine import MostlyNoMachine
from repro.core.presets import (
    hmnm_design,
    parse_design,
    perfect_design,
    tmnm_design,
)
from repro.multicore.config import MulticoreConfig
from repro.multicore.hierarchy import MulticoreHierarchy
from repro.multicore.mnm import MulticoreMNM, multicore_storage_bits
from tests.conftest import random_references, small_hierarchy_config


def make(sharing, cores=2, policy="inclusive", design=None):
    mc = MulticoreConfig(cores=cores, mnm_sharing=sharing, l2_policy=policy)
    hierarchy = MulticoreHierarchy(small_hierarchy_config(3), mc)
    mnm = MulticoreMNM(hierarchy, design or tmnm_design(10, 1), sharing)
    return hierarchy, mnm


class TestTopologies:
    def test_private_replicates_banks_per_core(self):
        _, mnm = make("private", cores=3)
        tier2 = [bank for bank in mnm.banks() if bank.tier == 2]
        assert sorted(bank.core for bank in tier2) == [0, 1, 2]

    def test_shared_keeps_one_bank_per_cache(self):
        _, mnm = make("shared", cores=3)
        assert all(bank.core is None for bank in mnm.banks())

    def test_hybrid_splits_by_tier(self):
        _, mnm = make("hybrid", cores=2)
        tiers = {bank.tier: bank.core for bank in mnm.banks()}
        tier2 = [bank for bank in mnm.banks() if bank.tier == 2]
        tier3 = [bank for bank in mnm.banks() if bank.tier == 3]
        assert all(bank.core is not None for bank in tier2)
        assert all(bank.core is None for bank in tier3)
        del tiers

    def test_private_storage_is_core_multiplied(self):
        """For a replication-free filter family, private banks cost exactly
        cores x the shared footprint — the hardware side of the trade."""
        config = small_hierarchy_config(3)
        design = tmnm_design(10, 1)
        shared = multicore_storage_bits(
            config, design, MulticoreConfig(cores=4, mnm_sharing="shared"))
        private = multicore_storage_bits(
            config, design, MulticoreConfig(cores=4, mnm_sharing="private"))
        assert private == 4 * shared

    def test_hybrid_storage_between_extremes(self):
        config = small_hierarchy_config(3)
        design = hmnm_design(2)
        bits = {
            sharing: multicore_storage_bits(
                config, design,
                MulticoreConfig(cores=4, mnm_sharing=sharing))
            for sharing in ("private", "shared", "hybrid")
        }
        assert bits["shared"] <= bits["hybrid"] <= bits["private"]


class TestInvalidationRouting:
    def test_private_banks_see_cross_core_traffic(self):
        hierarchy, mnm = make("private", cores=2)
        rng = random.Random(3)
        for address, kind in random_references(rng, 2000, span=1 << 13):
            core = rng.randrange(2)
            mnm.query(core, address, kind)
            hierarchy.access(core, address, kind)
        assert mnm.cross_core_invalidations > 0

    def test_shared_bank_never_sees_foreign_events(self):
        hierarchy, mnm = make("shared", cores=2)
        rng = random.Random(3)
        for address, kind in random_references(rng, 2000, span=1 << 13):
            core = rng.randrange(2)
            mnm.query(core, address, kind)
            hierarchy.access(core, address, kind)
        assert mnm.cross_core_invalidations == 0

    def test_downgrade_never_creates_a_proof(self):
        """After on_invalidate(g) no filter family may claim a definite
        miss for g — invalidation only ever *removes* proofs."""
        designs = [tmnm_design(8, 1), parse_design("SMNM_10x1"),
                   parse_design("CMNM_2_8"), hmnm_design(2),
                   perfect_design()]
        for design in designs:
            _, mnm = make("private", cores=2, design=design)
            for bank in mnm.banks():
                for granule in (0, 5, 127):
                    bank.filter.on_invalidate(granule)
                    assert not bank.filter.is_definite_miss(granule), (
                        design.name, bank.cache.config.name, granule)


class TestMachineInvalidationSurface:
    def test_machine_on_invalidate_downgrades_every_filter(self):
        hierarchy = CacheHierarchy(small_hierarchy_config(3))
        machine = MostlyNoMachine(hierarchy, tmnm_design(10, 1))
        granule = 0x40
        for name in machine.tracked_cache_names():
            assert machine.filter_for(name).is_definite_miss(granule)
        machine.on_invalidate(granule)
        for name in machine.tracked_cache_names():
            assert not machine.filter_for(name).is_definite_miss(granule)

    def test_machine_stays_sound_after_invalidations(self):
        """Spraying invalidation hints can only lose coverage, never
        produce a false miss."""
        rng = random.Random(17)
        hierarchy = CacheHierarchy(small_hierarchy_config(3))
        machine = MostlyNoMachine(hierarchy, hmnm_design(2))
        for address, kind in random_references(rng, 3000, span=1 << 14):
            if rng.random() < 0.1:
                machine.on_invalidate(rng.randrange(1 << 9))
            bits = machine.query(address, kind)
            outcome = hierarchy.access(address, kind)
            supplier = outcome.supplier
            if supplier is not None and supplier >= 2:
                assert not bits[supplier - 1]
